package perfmodel

import (
	"testing"

	"chimera/internal/model"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// TestCriticalPathFig6 pins the paper's Figure 6 example: Chimera with
// D = N = 6 has Cf = 6 forward and Cb = 10 backward passes on the critical
// path.
func TestCriticalPathFig6(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 6, N: 6})
	if err != nil {
		t.Fatal(err)
	}
	cf, cb, err := CriticalPath(s)
	if err != nil {
		t.Fatal(err)
	}
	if cf != 6 || cb != 10 {
		t.Fatalf("critical path (Cf=%d, Cb=%d), paper says (6, 10)", cf, cb)
	}
}

// TestCriticalPathScalesWithD: deeper pipelines lengthen the critical path.
func TestCriticalPathScalesWithD(t *testing.T) {
	var prev int
	for _, d := range []int{4, 8, 16} {
		s, err := schedule.Chimera(schedule.ChimeraConfig{D: d, N: d})
		if err != nil {
			t.Fatal(err)
		}
		cf, cb, err := CriticalPath(s)
		if err != nil {
			t.Fatal(err)
		}
		if cf+cb <= prev {
			t.Fatalf("D=%d: path %d not longer than previous %d", d, cf+cb, prev)
		}
		prev = cf + cb
	}
}

func chimeraCfg(t *testing.T, d, n, b, w int) sim.Config {
	t.Helper()
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: d, N: n, Concat: schedule.Direct})
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{
		Model: model.BERT48(), Schedule: s, MicroBatch: b, W: w,
		Device: sim.PizDaintNode(), Network: sim.AriesNetwork(),
	}
}

// TestModelErrorWithin10Percent reproduces the §4.2.2 claim: Eq. 1 predicts
// the simulated iteration time within 10% across representative Bert-48
// configurations on 32 workers.
func TestModelErrorWithin10Percent(t *testing.T) {
	for _, c := range []struct{ w, d, b int }{
		{16, 2, 16}, {8, 4, 8}, {4, 8, 16}, {2, 16, 16},
	} {
		n := 512 / c.w / c.b
		cfg := chimeraCfg(t, c.d, n, c.b, c.w)
		e, err := ModelError(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if e > 0.10 {
			t.Errorf("W=%d D=%d B=%d: model error %.1f%% > 10%%", c.w, c.d, c.b, e*100)
		}
	}
}

// TestPredictThroughputPositive sanity-checks the prediction output.
func TestPredictThroughputPositive(t *testing.T) {
	pred, err := Predict(chimeraCfg(t, 4, 8, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if pred.IterTime <= 0 || pred.Throughput <= 0 {
		t.Fatalf("degenerate prediction %+v", pred)
	}
	if pred.Cf <= 0 || pred.Cb < pred.Cf {
		t.Fatalf("implausible critical path %+v", pred)
	}
}

// TestPlanRanksConfigurations checks planning over 32 workers, B̂=512 for
// Bert-48: the planner must return several feasible configurations ranked
// by predicted throughput, and the winner must use the greedy max-B.
func TestPlanRanksConfigurations(t *testing.T) {
	preds, err := Plan(PlanRequest{
		Model: model.BERT48(), P: 32, MiniBatch: 512,
		Device: sim.PizDaintNode(), Network: sim.AriesNetwork(), MaxB: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) < 3 {
		t.Fatalf("expected several configs, got %d", len(preds))
	}
	for i := 1; i < len(preds); i++ {
		if preds[i].Throughput > preds[i-1].Throughput {
			t.Fatal("plan not sorted by throughput")
		}
	}
	for _, p := range preds {
		if p.W*p.D != 32 {
			t.Fatalf("config W=%d D=%d does not use 32 workers", p.W, p.D)
		}
		if p.B*p.N*p.W != 512 {
			t.Fatalf("config does not realize B̂=512: %+v", p)
		}
	}
	// §4.2.2: the model selects (W=8, D=4) for Bert-48 on 32 nodes.
	best := preds[0]
	if best.D != 4 || best.W != 8 {
		t.Logf("note: best predicted config W=%d D=%d B=%d (paper found W=8 D=4 best in practice)",
			best.W, best.D, best.B)
	}
}

// TestPlanRejectsImpossible covers the error path.
func TestPlanRejectsImpossible(t *testing.T) {
	_, err := Plan(PlanRequest{Model: model.BERT48(), P: 7, MiniBatch: 512})
	if err == nil {
		t.Fatal("P=7 with 48 layers should have no even-D factorization")
	}
}

// TestGreedyMaxBFits: the planner's chosen B must fit memory by
// construction; pushing one power of two higher must not fit (or not divide).
func TestGreedyMaxBFits(t *testing.T) {
	preds, err := Plan(PlanRequest{
		Model: model.BERT48(), P: 32, MiniBatch: 512,
		Device: sim.PizDaintNode(), Network: sim.AriesNetwork(), MaxB: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	best := preds[0]
	sch, err := schedule.Chimera(schedule.ChimeraConfig{D: best.D, N: best.N, Concat: schedule.Direct})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Model: model.BERT48(), Schedule: sch, MicroBatch: best.B, W: best.W,
		Device: sim.PizDaintNode(), Network: sim.AriesNetwork()}
	plain, withRec, err := sim.FitsMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plain && !withRec {
		t.Fatalf("planned config does not fit memory: %+v", best)
	}
}

// TestPredictErrorPaths covers invalid model/schedule combinations.
func TestPredictErrorPaths(t *testing.T) {
	odd, err := schedule.ByName("dapple", 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Model: model.BERT48(), Schedule: odd, MicroBatch: 1, W: 1,
		Device: sim.PizDaintNode(), Network: sim.AriesNetwork()}
	if _, err := Predict(cfg); err == nil {
		t.Fatal("48 layers into 5 stages must fail prediction")
	}
	if _, err := ModelError(cfg); err == nil {
		t.Fatal("model error must propagate partition failure")
	}
}

// TestCriticalPathBaselines: GPipe's critical path is the full fill + drain
// chain (Cf = Cb = N+D−1).
func TestCriticalPathBaselines(t *testing.T) {
	s, err := schedule.GPipe(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cf, cb, err := CriticalPath(s)
	if err != nil {
		t.Fatal(err)
	}
	if cf != 8+4-1 || cb != 8+4-1 {
		t.Fatalf("gpipe critical path (%d, %d), want (11, 11)", cf, cb)
	}
}

// TestPlanRecomputeFallback: when no micro-batch fits plainly, the planner
// falls back to the largest B that fits with recomputation.
func TestPlanRecomputeFallback(t *testing.T) {
	// GPT-2 on few workers: nothing fits without recompute at D=8.
	preds, err := Plan(PlanRequest{
		Model: model.GPT2(), P: 16, MiniBatch: 64,
		Device: sim.PizDaintNode(), Network: sim.AriesNetwork(), MaxB: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	anyRecompute := false
	for _, p := range preds {
		if p.Recompute {
			anyRecompute = true
		}
	}
	if !anyRecompute {
		t.Log("note: all configurations fit plainly at this scale")
	}
}
