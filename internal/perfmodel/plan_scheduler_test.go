package perfmodel

import (
	"reflect"
	"testing"

	"chimera/internal/model"
	"chimera/internal/sim"
)

func hetPlanRequest(scheduler string, factors []float64) PlanRequest {
	return PlanRequest{
		Model: model.GPT2Small32(), P: 32, MiniBatch: 512,
		Device: sim.PizDaintNode(), Network: sim.AriesNetwork(), MaxB: 8,
		SpeedFactors: sim.EncodeSpeedFactors(factors),
		Scheduler:    scheduler,
	}
}

// TestPlanSchedulerAxis: "auto" on a heterogeneous pipeline sweeps fixed
// plus every list policy, rows stay sorted, and at a severe straggler the
// best list-scheduled prediction beats the fixed placement. GPT2Small32 has
// the memory headroom that lets a list policy actually move stage groups
// off the straggler (BERT48's per-stage weights pin every worker to two
// groups, capping the reshaping gain).
func TestPlanSchedulerAxis(t *testing.T) {
	factors := []float64{1, 1, 1, 1, 2, 1, 1, 1}
	preds, err := Plan(hetPlanRequest("auto", factors))
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]*Prediction{}
	for i, p := range preds {
		if i > 0 && p.Throughput > preds[i-1].Throughput {
			t.Fatal("plan not sorted by throughput")
		}
		if byPolicy[p.Scheduler] == nil {
			byPolicy[p.Scheduler] = p
		}
	}
	for _, pol := range []string{"", "heft", "cpop", "lb"} {
		if byPolicy[pol] == nil {
			t.Fatalf("no prediction for policy %q in %d rows", pol, len(preds))
		}
	}
	if best := preds[0]; best.Scheduler == "" {
		t.Fatalf("best prediction under a 2× straggler is the fixed placement (%.1f samples/s); expected a list policy to lead",
			best.Throughput)
	}
	if fixed := byPolicy[""]; !(byPolicy["heft"].Throughput > fixed.Throughput) {
		t.Fatalf("heft %.1f not above fixed %.1f", byPolicy["heft"].Throughput, fixed.Throughput)
	}
}

// TestPlanSchedulerUniformCollapses: with homogeneous factors the policy
// axis collapses to the fixed placement, bit-identical to a pre-policy plan.
func TestPlanSchedulerUniformCollapses(t *testing.T) {
	base, err := Plan(PlanRequest{
		Model: model.GPT2Small32(), P: 32, MiniBatch: 512,
		Device: sim.PizDaintNode(), Network: sim.AriesNetwork(), MaxB: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []string{"fixed", "heft", "auto"} {
		got, err := Plan(hetPlanRequest(sel, nil))
		if err != nil {
			t.Fatalf("%s: %v", sel, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("scheduler %q with homogeneous factors diverged from the fixed plan", sel)
		}
	}
}

// TestPlanSchedulerUnknownRejected covers the validation path.
func TestPlanSchedulerUnknownRejected(t *testing.T) {
	if _, err := Plan(hetPlanRequest("peft", []float64{1, 2})); err == nil {
		t.Fatal("unknown scheduler name must be rejected")
	}
}
