package collective

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"chimera/internal/comm"
)

// runGroup executes fn concurrently on every member of a fresh world.
func runGroup(t *testing.T, size int, fn func(c *comm.Communicator, g Group)) {
	t.Helper()
	w := comm.NewWorld(size)
	ranks := make([]int, size)
	for i := range ranks {
		ranks[i] = i
	}
	g := NewGroup(ranks...)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(w.Rank(r), g)
		}(r)
	}
	wg.Wait()
}

func checkAllReduce(t *testing.T, size, n int, alg Algorithm) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(size*1000 + n)))
	inputs := make([][]float32, size)
	want := make([]float32, n)
	for r := range inputs {
		inputs[r] = make([]float32, n)
		for i := range inputs[r] {
			inputs[r][i] = float32(rng.Intn(1000)) // integers: exact fp sums
			want[i] += inputs[r][i]
		}
	}
	results := make([][]float32, size)
	runGroup(t, size, func(c *comm.Communicator, g Group) {
		buf := make([]float32, n)
		copy(buf, inputs[c.Rank()])
		AllReduce(c, g, 3, buf, alg)
		results[c.Rank()] = buf
	})
	for r := 0; r < size; r++ {
		for i := 0; i < n; i++ {
			if results[r][i] != want[i] {
				t.Fatalf("alg=%v size=%d n=%d rank=%d idx=%d: got %v want %v",
					alg, size, n, r, i, results[r][i], want[i])
			}
		}
	}
}

func TestAllReduceAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{Ring, RecursiveDoubling, Rabenseifner} {
		for _, size := range []int{1, 2, 3, 4, 5, 8} {
			for _, n := range []int{1, 7, 16, 333} {
				checkAllReduce(t, size, n, alg)
			}
		}
	}
}

func TestAllReducePropertySumPreserved(t *testing.T) {
	// Property: for random vectors, every rank ends with the elementwise sum.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 2 + rng.Intn(7)
		n := 1 + rng.Intn(100)
		alg := Algorithm(rng.Intn(3))
		inputs := make([][]float32, size)
		want := make([]float32, n)
		for r := range inputs {
			inputs[r] = make([]float32, n)
			for i := range inputs[r] {
				inputs[r][i] = float32(rng.Intn(64) - 32)
				want[i] += inputs[r][i]
			}
		}
		results := make([][]float32, size)
		runGroup(t, size, func(c *comm.Communicator, g Group) {
			buf := append([]float32(nil), inputs[c.Rank()]...)
			AllReduce(c, g, 0, buf, alg)
			results[c.Rank()] = buf
		})
		for r := 0; r < size; r++ {
			for i := 0; i < n; i++ {
				if results[r][i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSubgroup(t *testing.T) {
	// Only ranks {1,3} of a 4-rank world participate; others stay silent.
	w := comm.NewWorld(4)
	g := NewGroup(1, 3)
	var wg sync.WaitGroup
	results := make([][]float32, 4)
	for _, r := range []int{1, 3} {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := []float32{float32(r), float32(r * 10)}
			AllReduce(w.Rank(r), g, 0, buf, Ring)
			results[r] = buf
		}(r)
	}
	wg.Wait()
	for _, r := range []int{1, 3} {
		if results[r][0] != 4 || results[r][1] != 40 {
			t.Fatalf("rank %d got %v", r, results[r])
		}
	}
}

func TestConcurrentAllReducesDistinctTags(t *testing.T) {
	// Two allreduces with different opTags interleaved on the same group must
	// not cross-contaminate.
	const size = 4
	w := comm.NewWorld(size)
	ranks := []int{0, 1, 2, 3}
	g := NewGroup(ranks...)
	var wg sync.WaitGroup
	resA := make([][]float32, size)
	resB := make([][]float32, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Rank(r)
			a := []float32{1}
			b := []float32{10}
			AllReduce(c, g, 1, a, Ring)
			AllReduce(c, g, 2, b, Ring)
			resA[r], resB[r] = a, b
		}(r)
	}
	wg.Wait()
	for r := 0; r < size; r++ {
		if resA[r][0] != 4 {
			t.Fatalf("rank %d opA got %v want 4", r, resA[r][0])
		}
		if resB[r][0] != 40 {
			t.Fatalf("rank %d opB got %v want 40", r, resB[r][0])
		}
	}
}

func TestIAllReduceOverlap(t *testing.T) {
	runGroup(t, 4, func(c *comm.Communicator, g Group) {
		buf := []float32{1, 2, 3, 4}
		h := IAllReduce(c, g, 5, buf, Rabenseifner)
		h.Wait()
		for i, v := range buf {
			if v != float32(4*(i+1)) {
				t.Errorf("rank %d idx %d: got %v", c.Rank(), i, v)
			}
		}
	})
}

func TestBroadcast(t *testing.T) {
	for _, size := range []int{2, 3, 4, 7, 8} {
		for root := 0; root < size; root++ {
			results := make([][]float32, size)
			runGroup(t, size, func(c *comm.Communicator, g Group) {
				buf := make([]float32, 5)
				if g.Index(c.Rank()) == root {
					for i := range buf {
						buf[i] = float32(100 + i)
					}
				}
				Broadcast(c, g, root, buf, root)
				results[c.Rank()] = buf
			})
			for r := 0; r < size; r++ {
				for i := 0; i < 5; i++ {
					if results[r][i] != float32(100+i) {
						t.Fatalf("size=%d root=%d rank=%d: got %v", size, root, r, results[r])
					}
				}
			}
		}
	}
}

func TestAllGather(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8} {
		results := make([][]float32, size)
		runGroup(t, size, func(c *comm.Communicator, g Group) {
			me := g.Index(c.Rank())
			contrib := []float32{float32(me), float32(me * 2)}
			out := make([]float32, size*2)
			AllGather(c, g, 0, contrib, out)
			results[c.Rank()] = out
		})
		for r := 0; r < size; r++ {
			for m := 0; m < size; m++ {
				if results[r][2*m] != float32(m) || results[r][2*m+1] != float32(2*m) {
					t.Fatalf("size=%d rank=%d: got %v", size, r, results[r])
				}
			}
		}
	}
}

func TestGroupIndex(t *testing.T) {
	g := NewGroup(4, 2, 9)
	if g.Size() != 3 {
		t.Fatalf("size %d", g.Size())
	}
	if g.Index(2) != 1 || g.Index(9) != 2 || g.Index(5) != -1 {
		t.Fatalf("index lookup broken: %d %d %d", g.Index(2), g.Index(9), g.Index(5))
	}
}

func TestAlgorithmString(t *testing.T) {
	if Rabenseifner.String() != "rabenseifner" || Ring.String() != "ring" {
		t.Fatal("algorithm names changed")
	}
	if RecursiveDoubling.String() != "recursive-doubling" {
		t.Fatal("algorithm names changed")
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm must still render")
	}
}

func TestSplitChunksCoverExactly(t *testing.T) {
	f := func(n, parts uint8) bool {
		np := int(parts%16) + 1
		nn := int(n)
		chunks := splitChunks(nn, np)
		if len(chunks) != np {
			return false
		}
		prev := 0
		for _, ch := range chunks {
			if ch.lo != prev || ch.hi < ch.lo {
				return false
			}
			prev = ch.hi
		}
		return prev == nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
