// Package collective implements collective communication operations over the
// in-process communicator of package comm. It provides the gradient
// synchronization primitives Chimera relies on: allreduce across stage
// replicas (ring, recursive doubling, and Rabenseifner's reduce-scatter +
// allgather algorithm) and asynchronous (nonblocking) allreduce handles used
// for the eager synchronization scheme of §3.2 of the paper.
//
// Collectives operate on a Group: an ordered subset of world ranks. All
// members must call the collective with their own communicator; the group
// index of each member is its position in the rank list.
package collective

import (
	"fmt"

	"chimera/internal/comm"
)

// Group identifies an ordered set of world ranks participating in a
// collective. All members share the same slice contents.
type Group struct {
	Ranks []int
}

// NewGroup builds a group from the given world ranks.
func NewGroup(ranks ...int) Group {
	cp := make([]int, len(ranks))
	copy(cp, ranks)
	return Group{Ranks: cp}
}

// Size returns the number of members.
func (g Group) Size() int { return len(g.Ranks) }

// Index returns the position of rank within the group, or -1.
func (g Group) Index(rank int) int {
	for i, r := range g.Ranks {
		if r == rank {
			return i
		}
	}
	return -1
}

// tag space layout: collectives use tags well above pipeline traffic.
const (
	tagRing   = 1 << 24
	tagRD     = 1 << 25
	tagRab    = 1 << 26
	tagBcast  = 1 << 27
	tagGather = 1 << 28
)

// Algorithm selects the allreduce implementation.
type Algorithm int

const (
	// Rabenseifner is reduce-scatter (recursive halving) followed by
	// allgather (recursive doubling). Bandwidth-optimal for large messages;
	// the algorithm the paper's cost model assumes.
	Rabenseifner Algorithm = iota
	// Ring is the classic 2(r-1)-step ring allreduce.
	Ring
	// RecursiveDoubling exchanges full vectors in log2(r) rounds.
	// Latency-optimal for small messages.
	RecursiveDoubling
)

func (a Algorithm) String() string {
	switch a {
	case Rabenseifner:
		return "rabenseifner"
	case Ring:
		return "ring"
	case RecursiveDoubling:
		return "recursive-doubling"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// AllReduce sums data elementwise across all group members, in place.
// opTag distinguishes concurrent allreduces on the same group (e.g. one per
// pipeline stage); all members must pass the same opTag.
func AllReduce(c *comm.Communicator, g Group, opTag int, data []float32, alg Algorithm) {
	if g.Size() == 1 {
		return
	}
	me := g.Index(c.Rank())
	if me < 0 {
		panic(fmt.Sprintf("collective: rank %d not in group %v", c.Rank(), g.Ranks))
	}
	switch alg {
	case Ring:
		ringAllReduce(c, g, me, opTag, data)
	case RecursiveDoubling:
		recursiveDoublingAllReduce(c, g, me, opTag, data)
	case Rabenseifner:
		rabenseifnerAllReduce(c, g, me, opTag, data)
	default:
		panic("collective: unknown algorithm")
	}
}

// Handle is an outstanding nonblocking allreduce started with IAllReduce.
type Handle struct {
	done chan struct{}
}

// Wait blocks until the allreduce has completed. After Wait returns, the
// buffer passed to IAllReduce holds the reduced result.
func (h *Handle) Wait() { <-h.done }

// IAllReduce starts an allreduce on a dedicated progression goroutine,
// emulating a nonblocking collective (cf. Hoefler et al., the mechanism
// behind the eager gradient synchronization of §3.2). The caller must not
// touch data until Wait returns. Each member must use a private communicator
// clone obtained from the same world (the pipeline executor allocates
// per-purpose communicators so progression does not race worker traffic).
func IAllReduce(c *comm.Communicator, g Group, opTag int, data []float32, alg Algorithm) *Handle {
	h := &Handle{done: make(chan struct{})}
	go func() {
		AllReduce(c, g, opTag, data, alg)
		close(h.done)
	}()
	return h
}

// ringAllReduce: reduce-scatter then allgather around a ring; 2(r-1) steps.
func ringAllReduce(c *comm.Communicator, g Group, me, opTag int, data []float32) {
	r := g.Size()
	chunks := splitChunks(len(data), r)
	next := g.Ranks[(me+1)%r]
	prev := g.Ranks[(me-1+r)%r]
	// Reduce-scatter: after step k, each member holds the partial sum of
	// chunk (me-k) accumulated over k+1 members.
	for step := 0; step < r-1; step++ {
		sendIdx := (me - step + r) % r
		recvIdx := (me - step - 1 + 2*r) % r
		sc := chunks[sendIdx]
		c.Send(next, tagRing+opTag*64+step, data[sc.lo:sc.hi])
		in := c.Recv(prev, tagRing+opTag*64+step)
		rc := chunks[recvIdx]
		addInto(data[rc.lo:rc.hi], in)
	}
	// Allgather: circulate the completed chunks.
	for step := 0; step < r-1; step++ {
		sendIdx := (me + 1 - step + 2*r) % r
		recvIdx := (me - step + 2*r) % r
		sc := chunks[sendIdx]
		c.Send(next, tagRing+opTag*64+32+step, data[sc.lo:sc.hi])
		in := c.Recv(prev, tagRing+opTag*64+32+step)
		rc := chunks[recvIdx]
		copy(data[rc.lo:rc.hi], in)
	}
}

// recursiveDoublingAllReduce requires the group size to be a power of two for
// the fast path; other sizes fall back to ring.
func recursiveDoublingAllReduce(c *comm.Communicator, g Group, me, opTag int, data []float32) {
	r := g.Size()
	if r&(r-1) != 0 {
		ringAllReduce(c, g, me, opTag, data)
		return
	}
	for dist := 1; dist < r; dist <<= 1 {
		peer := me ^ dist
		c.Send(g.Ranks[peer], tagRD+opTag*64+dist, data)
		in := c.Recv(g.Ranks[peer], tagRD+opTag*64+dist)
		addInto(data, in)
	}
}

// rabenseifnerAllReduce implements reduce-scatter via recursive halving and
// allgather via recursive doubling. Power-of-two group sizes take the fast
// path; others fall back to ring (sufficient here: stage replica counts in
// the experiments are powers of two, as on Piz Daint).
func rabenseifnerAllReduce(c *comm.Communicator, g Group, me, opTag int, data []float32) {
	r := g.Size()
	if r&(r-1) != 0 || len(data) < r {
		ringAllReduce(c, g, me, opTag, data)
		return
	}
	// Work over chunk indices: splitChunks yields r contiguous chunks whose
	// counts halve exactly because r is a power of two; element offsets may
	// be uneven, which is fine since we always slice via chunk boundaries.
	chunks := splitChunks(len(data), r)
	offset := func(ci int) int {
		if ci == r {
			return len(data)
		}
		return chunks[ci].lo
	}
	// Recursive halving reduce-scatter over chunk-index region [clo, chi).
	clo, chi := 0, r
	step := 0
	for dist := r / 2; dist >= 1; dist /= 2 {
		peer := me ^ dist
		mid := (clo + chi) / 2
		var sLo, sHi, kLo, kHi int
		if me&dist == 0 {
			sLo, sHi, kLo, kHi = mid, chi, clo, mid // keep lower half
		} else {
			sLo, sHi, kLo, kHi = clo, mid, mid, chi // keep upper half
		}
		c.Send(g.Ranks[peer], tagRab+opTag*64+step, data[offset(sLo):offset(sHi)])
		in := c.Recv(g.Ranks[peer], tagRab+opTag*64+step)
		addInto(data[offset(kLo):offset(kHi)], in)
		clo, chi = kLo, kHi
		step++
	}
	// Recursive doubling allgather, retracing the halving in reverse: the
	// peer at distance dist owns the sibling chunk-region of equal count.
	for dist := 1; dist < r; dist <<= 1 {
		peer := me ^ dist
		count := chi - clo
		var pLo, pHi int
		if me&dist == 0 {
			pLo, pHi = chi, chi+count
		} else {
			pLo, pHi = clo-count, clo
		}
		c.Send(g.Ranks[peer], tagRab+opTag*64+32+step, data[offset(clo):offset(chi)])
		in := c.Recv(g.Ranks[peer], tagRab+opTag*64+32+step)
		copy(data[offset(pLo):offset(pHi)], in)
		if pLo < clo {
			clo = pLo
		}
		if pHi > chi {
			chi = pHi
		}
		step++
	}
}

// Broadcast sends root's data to all group members, overwriting data on
// non-roots. Implemented as a binomial tree.
func Broadcast(c *comm.Communicator, g Group, opTag int, data []float32, rootIdx int) {
	r := g.Size()
	if r == 1 {
		return
	}
	me := g.Index(c.Rank())
	// Rotate so root is virtual rank 0, then run the standard top-down
	// binomial tree: at round mask, ranks below mask forward to rank+mask.
	vrank := (me - rootIdx + r) % r
	for mask := 1; mask < r; mask <<= 1 {
		if vrank < mask {
			peer := vrank + mask
			if peer < r {
				c.Send(g.Ranks[(peer+rootIdx)%r], tagBcast+opTag*64+mask, data)
			}
		} else if vrank < 2*mask {
			in := c.Recv(g.Ranks[(vrank-mask+rootIdx)%r], tagBcast+opTag*64+mask)
			copy(data, in)
		}
	}
}

// AllGather concatenates each member's equally sized contribution into out
// (len(out) = group size × len(contrib)), ordered by group index.
func AllGather(c *comm.Communicator, g Group, opTag int, contrib []float32, out []float32) {
	r := g.Size()
	me := g.Index(c.Rank())
	k := len(contrib)
	if len(out) != r*k {
		panic(fmt.Sprintf("collective: allgather out length %d != %d", len(out), r*k))
	}
	copy(out[me*k:(me+1)*k], contrib)
	// Simple ring allgather: r-1 steps.
	next := g.Ranks[(me+1)%r]
	prev := g.Ranks[(me-1+r)%r]
	for step := 0; step < r-1; step++ {
		sendIdx := (me - step + r) % r
		c.Send(next, tagGather+opTag*64+step, out[sendIdx*k:(sendIdx+1)*k])
		in := c.Recv(prev, tagGather+opTag*64+step)
		recvIdx := (me - step - 1 + 2*r) % r
		copy(out[recvIdx*k:(recvIdx+1)*k], in)
	}
}

type span struct{ lo, hi int }

func splitChunks(n, parts int) []span {
	out := make([]span, parts)
	base, rem := n/parts, n%parts
	off := 0
	for i := 0; i < parts; i++ {
		sz := base
		if i < rem {
			sz++
		}
		out[i] = span{off, off + sz}
		off += sz
	}
	return out
}

func addInto(dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("collective: length mismatch %d != %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] += src[i]
	}
}
