package collective

import (
	"sync"
	"testing"

	"chimera/internal/comm"
)

func benchAllReduce(b *testing.B, size, n int, alg Algorithm) {
	b.Helper()
	ranks := make([]int, size)
	for i := range ranks {
		ranks[i] = i
	}
	g := NewGroup(ranks...)
	bufs := make([][]float32, size)
	for r := range bufs {
		bufs[r] = make([]float32, n)
	}
	b.SetBytes(int64(n * 4 * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := comm.NewWorld(size)
		var wg sync.WaitGroup
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				AllReduce(w.Rank(r), g, 0, bufs[r], alg)
			}(r)
		}
		wg.Wait()
	}
}

func BenchmarkAllReduceRing8x64k(b *testing.B)         { benchAllReduce(b, 8, 1<<16, Ring) }
func BenchmarkAllReduceRabenseifner8x64k(b *testing.B) { benchAllReduce(b, 8, 1<<16, Rabenseifner) }
func BenchmarkAllReduceRecDoubling8x64k(b *testing.B) {
	benchAllReduce(b, 8, 1<<16, RecursiveDoubling)
}
