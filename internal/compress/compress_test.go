package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeRoundtripErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := make([]float32, 1+rng.Intn(200))
		for i := range v {
			v[i] = float32(rng.NormFloat64() * 10)
		}
		q := Quantize8(v)
		out := Dequantize8(q, nil)
		bound := float64(q.Scale)/2 + 1e-6
		for i := range v {
			if math.Abs(float64(v[i]-out[i])) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeZeroVector(t *testing.T) {
	q := Quantize8([]float32{0, 0, 0})
	out := Dequantize8(q, nil)
	for _, v := range out {
		if v != 0 {
			t.Fatal("zero vector must roundtrip to zero")
		}
	}
}

func TestQuantizeDeterministic(t *testing.T) {
	v := []float32{0.5, -1.25, 3.75, 0}
	a, b := Quantize8(v), Quantize8(v)
	if a.Scale != b.Scale {
		t.Fatal("scales differ")
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("quantization not deterministic")
		}
	}
}

func TestTopKKeepsLargest(t *testing.T) {
	v := []float32{0.1, -5, 0.3, 4, -0.2, 2}
	s := TopK(v, 3)
	dense := s.Dense(nil)
	want := []float32{0, -5, 0, 4, 0, 2}
	for i := range want {
		if dense[i] != want[i] {
			t.Fatalf("topk dense %v want %v", dense, want)
		}
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	v := []float32{1, 1, 1, 1}
	a := TopK(v, 2)
	b := TopK(v, 2)
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			t.Fatal("tie-breaking not deterministic")
		}
	}
	if a.Indices[0] != 0 || a.Indices[1] != 1 {
		t.Fatalf("ties must resolve by index: %v", a.Indices)
	}
}

func TestTopKClampsK(t *testing.T) {
	s := TopK([]float32{1, 2}, 10)
	if len(s.Indices) != 2 {
		t.Fatalf("k must clamp to len: %d", len(s.Indices))
	}
}

func TestPackUnpackQuantized(t *testing.T) {
	v := []float32{0.5, -1.5, 2.5}
	q := Quantize8(v)
	rt := UnpackQuantized(PackQuantized(q))
	if rt.Scale != q.Scale {
		t.Fatal("scale lost")
	}
	for i := range q.Data {
		if rt.Data[i] != q.Data[i] {
			t.Fatal("data lost")
		}
	}
}

func TestPackUnpackSparse(t *testing.T) {
	s := TopK([]float32{3, -1, 0, 7, 2}, 2)
	rt := UnpackSparse(PackSparse(s))
	if rt.Len != 5 || len(rt.Indices) != 2 {
		t.Fatalf("shape lost: %+v", rt)
	}
	a, b := s.Dense(nil), rt.Dense(nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("values lost")
		}
	}
}

func TestSparseDenseReuseBuffer(t *testing.T) {
	s := TopK([]float32{5, 0, 0}, 1)
	buf := []float32{9, 9, 9}
	out := s.Dense(buf)
	if &out[0] != &buf[0] {
		t.Fatal("must reuse buffer")
	}
	if out[0] != 5 || out[1] != 0 || out[2] != 0 {
		t.Fatalf("stale entries: %v", out)
	}
}
