// Package compress implements the gradient-compression codecs the paper's
// conclusion names as the next step for reducing gradient-synchronization
// cost: symmetric int8 quantization (QSGD-style) and top-k sparsification.
// The training runtime uses them for allgather-based lossy gradient
// exchange; the simulator models their bandwidth reduction.
package compress

import (
	"math"
	"sort"
)

// Quantized8 is a symmetric 8-bit quantization of a float vector.
type Quantized8 struct {
	Scale float32
	Data  []int8
}

// Quantize8 encodes v with a single symmetric scale: q = round(v/scale),
// scale = max|v|/127. The maximum elementwise error is scale/2.
func Quantize8(v []float32) Quantized8 {
	var maxAbs float32
	for _, x := range v {
		if a := abs32(x); a > maxAbs {
			maxAbs = a
		}
	}
	q := Quantized8{Data: make([]int8, len(v))}
	if maxAbs == 0 {
		q.Scale = 1
		return q
	}
	q.Scale = maxAbs / 127
	inv := 1 / q.Scale
	for i, x := range v {
		r := math.RoundToEven(float64(x * inv))
		if r > 127 {
			r = 127
		}
		if r < -127 {
			r = -127
		}
		q.Data[i] = int8(r)
	}
	return q
}

// Dequantize8 decodes into dst (allocated if nil), returning dst.
func Dequantize8(q Quantized8, dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, len(q.Data))
	}
	for i, d := range q.Data {
		dst[i] = float32(d) * q.Scale
	}
	return dst
}

// MaxQuantError returns the worst-case roundtrip error of Quantize8 for v.
func MaxQuantError(v []float32) float32 {
	q := Quantize8(v)
	return q.Scale / 2
}

// Sparse is a top-k sparsification of a float vector.
type Sparse struct {
	Len     int
	Indices []int32
	Values  []float32
}

// TopK keeps the k entries of v with the largest magnitude (ties broken by
// index for determinism — replicas must produce identical encodings).
func TopK(v []float32, k int) Sparse {
	if k > len(v) {
		k = len(v)
	}
	idx := make([]int32, len(v))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		va, vb := abs32(v[idx[a]]), abs32(v[idx[b]])
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b]
	})
	kept := idx[:k]
	sort.Slice(kept, func(a, b int) bool { return kept[a] < kept[b] })
	s := Sparse{Len: len(v), Indices: make([]int32, k), Values: make([]float32, k)}
	copy(s.Indices, kept)
	for i, ix := range s.Indices {
		s.Values[i] = v[ix]
	}
	return s
}

// Dense decodes into dst (allocated if nil), zero-filling dropped entries.
func (s Sparse) Dense(dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, s.Len)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	for i, ix := range s.Indices {
		dst[ix] = s.Values[i]
	}
	return dst
}

// PackQuantized flattens a Quantized8 into a float32 wire payload (scale
// followed by one value per slot — the in-process communicator carries
// float32; real deployments would pack 4 int8 per word, which the
// simulator's bandwidth factor models).
func PackQuantized(q Quantized8) []float32 {
	out := make([]float32, 1+len(q.Data))
	out[0] = q.Scale
	for i, d := range q.Data {
		out[i+1] = float32(d)
	}
	return out
}

// UnpackQuantized reverses PackQuantized.
func UnpackQuantized(payload []float32) Quantized8 {
	q := Quantized8{Scale: payload[0], Data: make([]int8, len(payload)-1)}
	for i, f := range payload[1:] {
		q.Data[i] = int8(f)
	}
	return q
}

// PackSparse flattens a Sparse into a float32 wire payload:
// [len, k, idx..., val...].
func PackSparse(s Sparse) []float32 {
	k := len(s.Indices)
	out := make([]float32, 2+2*k)
	out[0] = float32(s.Len)
	out[1] = float32(k)
	for i, ix := range s.Indices {
		out[2+i] = float32(ix)
	}
	copy(out[2+k:], s.Values)
	return out
}

// UnpackSparse reverses PackSparse.
func UnpackSparse(payload []float32) Sparse {
	n := int(payload[0])
	k := int(payload[1])
	s := Sparse{Len: n, Indices: make([]int32, k), Values: make([]float32, k)}
	for i := 0; i < k; i++ {
		s.Indices[i] = int32(payload[2+i])
	}
	copy(s.Values, payload[2+k:])
	return s
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
