// Package stats provides the small numeric and formatting helpers shared
// by the experiment harnesses.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// StdDev returns the sample standard deviation of v.
func StdDev(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)-1))
}

// MinMax returns the extrema of v.
func MinMax(v []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// Speedup formats a ratio like the paper ("1.38x").
func Speedup(fast, slow float64) string {
	if fast <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", slow/fast)
}

// GiB formats bytes as GiB with two decimals.
func GiB(b int64) string { return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30)) }
