package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(v); m != 5 {
		t.Fatalf("mean %v", m)
	}
	if s := StdDev(v); math.Abs(s-2.138) > 1e-3 {
		t.Fatalf("stddev %v", s)
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs must be safe")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax (%v, %v)", lo, hi)
	}
}

func TestMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			// Keep the summation far from float64 overflow.
			xs[i] = math.Mod(x, 1e12)
		}
		lo, hi := MinMax(xs)
		m := Mean(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupAndGiB(t *testing.T) {
	if s := Speedup(2, 3); s != "1.50x" {
		t.Fatalf("speedup %q", s)
	}
	if s := Speedup(0, 3); s != "n/a" {
		t.Fatalf("speedup %q", s)
	}
	if g := GiB(1 << 30); g != "1.00 GiB" {
		t.Fatalf("gib %q", g)
	}
}
