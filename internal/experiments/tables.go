package experiments

import (
	"strconv"

	"chimera/internal/schedule"
)

// Table2 reproduces the paper's Table 2: bubble ratio, weights memory and
// activations memory per scheme — the paper's closed forms next to values
// measured from the generated schedules.
func Table2(d, n int) (*Report, error) {
	r := newReport("table-2", "Comparison between pipeline schemes (paper formulas vs measured)")
	r.addf("D=%d N=%d — memory in (Mθ, Ma) units; bubble ratios per paper conventions", d, n)
	r.addf("%-14s | %-22s | %-18s | %-18s | sync", "scheme", "bubble paper vs meas", "weights paper/meas", "acts paper/meas")
	for _, row := range schedule.Table2(d, n) {
		s, err := schedule.ByName(row.Scheme, d, n)
		if err != nil {
			return nil, err
		}
		a, err := schedule.Analyze(s)
		if err != nil {
			return nil, err
		}
		meas := a.BubbleRatioEqual
		paper := row.BubbleRatio
		if row.Scheme == "chimera" || row.Scheme == "gems" {
			meas = a.BubbleRatioPractical
			if row.Scheme == "chimera" {
				paper = schedule.ChimeraMiddleBubbleRatio(d, n)
			}
		}
		aLo, aHi := schedule.MinMax(a.ActivationsMa)
		wLo, wHi := schedule.MinMax(a.WeightsMTheta)
		r.addf("%-14s | %6.3f vs %6.3f       | [%g,%g] / [%g,%g]   | [%g,%g] / [%g,%g]  | %v",
			row.Scheme, paper, meas, row.WeightsLo, row.WeightsHi, wLo, wHi,
			row.ActLo, row.ActHi, aLo, aHi, a.Synchronous)
		r.Metrics["bubble:"+row.Scheme] = meas
	}
	return r, nil
}

// Table3 reproduces Table 3: Chimera generalized to 2f pipelines.
func Table3(d, n int) (*Report, error) {
	r := newReport("table-3", "Chimera with 2f pipelines (paper formulas vs measured)")
	r.addf("D=%d N=%d", d, n)
	r.addf("%-4s | %-8s | %-22s | %-14s | activations", "f", "replicas", "bubble paper vs meas", "weights (Mθ)")
	for f := 1; f <= d/2; f++ {
		if (d/2)%f != 0 {
			continue
		}
		want := schedule.Table3(d, n, f)
		s, err := schedule.Chimera(schedule.ChimeraConfig{D: d, N: n, F: f})
		if err != nil {
			return nil, err
		}
		tl, err := s.Replay(schedule.UnitEqual)
		if err != nil {
			return nil, err
		}
		lo, hi := schedule.MinMax(s.ActivationHighWater())
		r.addf("%-4d | %-8d | %6.3f vs %6.3f       | %-14g | paper [%g,%g], measured [%g,%g]",
			f, len(s.Replicas), want.BubbleRatio, tl.BubbleRatio(), want.WeightsMTheta,
			want.ActLo, want.ActHi, lo, hi)
		r.Metrics["bubble:f="+strconv.Itoa(f)] = tl.BubbleRatio()
	}
	return r, nil
}
