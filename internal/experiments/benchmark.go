package experiments

import (
	"math"
	"runtime"
	"sort"
	"time"

	"chimera/internal/engine"
	"chimera/internal/model"
)

// SweepBenchmark is the machine-readable result of BenchmarkSweep: the
// engine's serial-versus-parallel throughput on a tuning-sweep grid, emitted
// by `chimera-bench -json` as BENCH_sweep.json so CI can archive the perf
// trajectory across PRs.
type SweepBenchmark struct {
	// Model, P and Bhat describe the swept workload.
	Model string `json:"model"`
	P     int    `json:"p"`
	Bhat  int    `json:"bhat"`
	// Configs is the number of distinct feasible grid configurations;
	// Passes how many times the grid is walked (figures walk their grids
	// more than once: once to find the best point, again to print); and
	// Evaluations = Configs·Passes the total work presented to each side.
	Configs     int `json:"configs"`
	Passes      int `json:"passes"`
	Evaluations int `json:"evaluations"`

	Serial   SweepBenchSide `json:"serial"`
	Parallel SweepBenchSide `json:"parallel"`

	// Speedup is parallel over serial throughput (configs/sec): the
	// engine's combined pool + cache benefit on the repeated-walk access
	// pattern. UncachedSpeedup isolates the engine core's code-level wins
	// (compiled-graph arenas, flat producer tables, interned keys) with
	// both caches off: one uncached pass on the reference replay core (the
	// retained map interpreter driving the same simulator) against one
	// uncached pass on the optimized core, at the same pool size — so the
	// number measures code, not core count, and CI gates it at ≥ 1.5 on
	// any runner. PoolUncachedSpeedup is the old pool-only number — one
	// uncached full-pool pass against one uncached serial pass (≈1.0 on a
	// single core, ≈ the core count on real CI runners); the cache
	// contribution is visible separately as Parallel.CacheHitRate.
	Speedup             float64 `json:"speedup"`
	UncachedSpeedup     float64 `json:"uncached_speedup"`
	PoolUncachedSpeedup float64 `json:"pool_uncached_speedup"`
	// IdenticalRanking reports that both sides produced bit-identical
	// throughput rankings over the grid — the engine's determinism gate.
	IdenticalRanking bool `json:"identical_ranking"`

	// Replay benchmarks the compiled-graph replay against the retained map
	// interpreter; CI gates Replay.MinSpeedupD16 ≥ 2×.
	Replay *ReplayBenchmark `json:"replay"`

	// Fleet benchmarks the multi-job cluster allocator; CI gates
	// Fleet.Advantage > 1 (planner-guided strictly beats equal-split) and
	// Fleet.Deterministic. chimera-bench also writes this section alone
	// as BENCH_fleet.json.
	Fleet *FleetBenchmark `json:"fleet"`

	// Schedulers benchmarks the placement-policy zoo on a straggled
	// pipeline; CI gates Schedulers.ListBeatsFixed — a list-scheduled
	// placement must strictly beat the best fixed scheme on the severe
	// straggler case.
	Schedulers *SchedulerBenchmark `json:"schedulers"`

	// Obs benchmarks instrumentation overhead; CI gates Obs.Overhead ≤ 1.05
	// and Obs.IdenticalOutcomes — metrics must be effectively free and must
	// not perturb results.
	Obs *ObsBenchmark `json:"obs"`

	// Allocs benchmarks steady-state heap traffic on the replay and memo
	// hot paths; CI gates Allocs.ReplayAllocsPerOp == 0.
	Allocs *AllocsBenchmark `json:"allocs"`
}

// SweepBenchSide is one side (serial reference or engine) of the benchmark.
type SweepBenchSide struct {
	Workers       int     `json:"workers"`
	Seconds       float64 `json:"seconds"`
	ConfigsPerSec float64 `json:"configs_per_sec"`
	// CacheHitRate is the fraction of cache lookups that hit (0 for the
	// uncached serial reference).
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// benchGrid builds the benchmark's configuration grid: the §4.2.1-style
// tuning sweep (every scheme × D × B) for Bert-48 on 32 workers at B̂=512.
func benchGrid() []gridPoint {
	m, plat := model.BERT48(), pizDaint()
	var rcs []runConfig
	for _, scheme := range schemeList {
		rcs = append(rcs, crossProduct(scheme, []int{2, 4, 8, 16}, powersOfTwo(64))...)
	}
	return buildGrid(m, plat, 32, func(_, _ int) int { return 512 }, rcs)
}

// rankOutcomes returns grid indices ordered by throughput descending
// (infeasible points last), ties broken by index — a deterministic ranking
// for comparing the serial and parallel sides.
func rankOutcomes(outs []engine.Outcome) []int {
	idx := make([]int, len(outs))
	for i := range idx {
		idx[i] = i
	}
	tp := func(o engine.Outcome) float64 {
		if o.Err != nil || o.Result == nil || o.Result.OOM {
			return -1
		}
		return o.Result.Throughput
	}
	sort.SliceStable(idx, func(a, b int) bool { return tp(outs[idx[a]]) > tp(outs[idx[b]]) })
	return idx
}

// runSide walks the grid `passes` times on one engine and returns the last
// pass's outcomes plus the wall-clock seconds.
func runSide(e *engine.Engine, specs []engine.Spec, passes int) ([]engine.Outcome, float64) {
	start := time.Now()
	var outs []engine.Outcome
	for p := 0; p < passes; p++ {
		outs = e.Sweep(specs)
	}
	return outs, time.Since(start).Seconds()
}

// BenchmarkSweep measures the concurrent engine against the serial uncached
// reference on the same grid and verifies both produce identical rankings.
// passes <= 0 selects the default of 4.
func BenchmarkSweep(passes int) (*SweepBenchmark, error) {
	if passes <= 0 {
		passes = 4
	}
	grid := benchGrid()
	specs := make([]engine.Spec, len(grid))
	for i, g := range grid {
		specs[i] = g.spec
	}

	serialEng := engine.New(engine.Workers(1), engine.NoCache())
	serialOuts, serialSec := runSide(serialEng, specs, passes)

	parallelEng := engine.New()
	parallelOuts, parallelSec := runSide(parallelEng, specs, passes)
	stats := parallelEng.Stats()

	// Pool-only reference and core-vs-core reference: uncached full-pool
	// passes, the latter with the engine pinned to the reference replay
	// core (the retained map interpreter), so the ratio isolates the
	// optimized core's code-level wins at identical parallelism.
	// Alternating min-of-rounds, like the obs benchmark: each side's best
	// round is its honest speed, and interleaving evens out GC and cache
	// state left behind by the timed passes above.
	poolUncachedSec, refCoreSec := math.Inf(1), math.Inf(1)
	for round := 0; round < 3; round++ {
		// The cached engines above retire with their memos still on the
		// heap; collect before each timed round so neither side pays
		// their GC debt.
		runtime.GC()
		_, sec := runSide(engine.New(engine.NoCache()), specs, 1)
		poolUncachedSec = min(poolUncachedSec, sec)
		runtime.GC()
		_, sec = runSide(engine.New(engine.NoCache(), engine.ReferenceCore()), specs, 1)
		refCoreSec = min(refCoreSec, sec)
	}

	evals := passes * len(specs)
	b := &SweepBenchmark{
		Model: "Bert-48", P: 32, Bhat: 512,
		Configs: len(specs), Passes: passes, Evaluations: evals,
		Serial: SweepBenchSide{
			Workers: 1, Seconds: serialSec,
			ConfigsPerSec: float64(evals) / serialSec,
		},
		Parallel: SweepBenchSide{
			Workers: runtime.GOMAXPROCS(0), Seconds: parallelSec,
			ConfigsPerSec: float64(evals) / parallelSec,
			CacheHitRate:  stats.HitRate(),
		},
	}
	b.Speedup = b.Parallel.ConfigsPerSec / b.Serial.ConfigsPerSec
	b.UncachedSpeedup = refCoreSec / poolUncachedSec
	b.PoolUncachedSpeedup = (serialSec / float64(passes)) / poolUncachedSec

	replay, err := BenchmarkReplay()
	if err != nil {
		return nil, err
	}
	b.Replay = replay

	fleetBench, err := BenchmarkFleet()
	if err != nil {
		return nil, err
	}
	b.Fleet = fleetBench

	schedBench, err := BenchmarkSchedulers()
	if err != nil {
		return nil, err
	}
	b.Schedulers = schedBench

	b.Obs = BenchmarkObs(0)

	allocs, err := BenchmarkAllocs()
	if err != nil {
		return nil, err
	}
	b.Allocs = allocs

	b.IdenticalRanking = true
	sr, pr := rankOutcomes(serialOuts), rankOutcomes(parallelOuts)
	for i := range sr {
		if sr[i] != pr[i] {
			b.IdenticalRanking = false
			break
		}
		so, po := serialOuts[sr[i]], parallelOuts[pr[i]]
		sOK := so.Err == nil && so.Result != nil
		pOK := po.Err == nil && po.Result != nil
		if sOK != pOK || (sOK && so.Result.Throughput != po.Result.Throughput) {
			b.IdenticalRanking = false
			break
		}
	}
	return b, nil
}
