package experiments

import (
	"fmt"
	"time"

	"chimera/internal/refinterp"
	"chimera/internal/schedule"
)

// ReplayBenchCase times one schedule's replay under the retained map
// interpreter (internal/refinterp) against the compiled-graph topological
// pass, in nanoseconds per full replay of the practical cost model.
type ReplayBenchCase struct {
	Scheme string `json:"scheme"`
	D      int    `json:"d"`
	N      int    `json:"n"`
	// Ops and Edges size the compiled graph.
	Ops   int `json:"ops"`
	Edges int `json:"edges"`
	// CompileNs is the one-time graph compilation cost; it is amortized
	// over every replay of the schedule (the engine caches compiled graphs
	// with the schedules they belong to).
	CompileNs float64 `json:"compile_ns"`
	// InterpreterNs and GraphNs are ns per replay; Speedup their ratio.
	InterpreterNs float64 `json:"interpreter_ns_per_replay"`
	GraphNs       float64 `json:"graph_ns_per_replay"`
	Speedup       float64 `json:"speedup"`
}

// ReplayBenchmark is the replay section of BENCH_sweep.json: the compiled
// dependency-graph IR measured against the reference map interpreter.
type ReplayBenchmark struct {
	Cases []ReplayBenchCase `json:"cases"`
	// MinSpeedupD16 is the smallest graph-over-interpreter speedup among
	// the D=16 cases — CI gates it at ≥ 2×.
	MinSpeedupD16 float64 `json:"min_speedup_d16"`
}

// replayBenchCases is the D=8/16, N up to 64 grid the issue tracks: the
// bidirectional scheme plus the 1F1B baseline, at tune-sweep depths.
func replayBenchCases() []struct {
	scheme string
	d, n   int
} {
	return []struct {
		scheme string
		d, n   int
	}{
		{"chimera", 8, 32}, {"chimera", 8, 64},
		{"chimera", 16, 32}, {"chimera", 16, 64},
		{"dapple", 8, 64}, {"dapple", 16, 64},
		{"gpipe", 16, 64},
	}
}

// timePerCall runs f repeatedly until ~40ms of wall clock has accumulated
// and returns the mean ns per call — long enough to be stable on CI
// runners, short enough to keep the whole section under a second.
func timePerCall(f func()) float64 {
	const target = 40 * time.Millisecond
	iters, total := 0, time.Duration(0)
	for total < target {
		batch := 8
		start := time.Now()
		for i := 0; i < batch; i++ {
			f()
		}
		total += time.Since(start)
		iters += batch
	}
	return float64(total.Nanoseconds()) / float64(iters)
}

// BenchmarkReplay measures map-interpreter vs graph-pass replay on the
// tracked schedule grid. Schedules are built fresh (outside the engine) so
// the graph compile is timed explicitly rather than absorbed by a cache.
func BenchmarkReplay() (*ReplayBenchmark, error) {
	out := &ReplayBenchmark{}
	for _, c := range replayBenchCases() {
		var s *schedule.Schedule
		var err error
		if c.scheme == "chimera" {
			s, err = schedule.Chimera(schedule.ChimeraConfig{D: c.d, N: c.n})
		} else {
			s, err = schedule.ByName(c.scheme, c.d, c.n)
		}
		if err != nil {
			return nil, err
		}
		compileStart := time.Now()
		g, err := s.Graph()
		if err != nil {
			return nil, err
		}
		compileNs := float64(time.Since(compileStart).Nanoseconds())

		cm := schedule.UnitPractical
		ref, err := refinterp.Replay(s, cm)
		if err != nil {
			return nil, err
		}
		if got := g.Replay(cm); got.Makespan != ref.Makespan {
			return nil, fmt.Errorf("replay bench %s D=%d N=%d: graph makespan %d != interpreter %d",
				c.scheme, c.d, c.n, got.Makespan, ref.Makespan)
		}
		interpNs := timePerCall(func() { refinterp.Replay(s, cm) })
		graphNs := timePerCall(func() { g.Replay(cm) })
		bc := ReplayBenchCase{
			Scheme: c.scheme, D: c.d, N: c.n,
			Ops: g.Nodes(), Edges: g.Edges(),
			CompileNs:     compileNs,
			InterpreterNs: interpNs,
			GraphNs:       graphNs,
			Speedup:       interpNs / graphNs,
		}
		out.Cases = append(out.Cases, bc)
		if c.d == 16 && (out.MinSpeedupD16 == 0 || bc.Speedup < out.MinSpeedupD16) {
			out.MinSpeedupD16 = bc.Speedup
		}
	}
	return out, nil
}
