package experiments

import (
	"fmt"

	"chimera/internal/engine"
	"chimera/internal/model"
	"chimera/internal/schedule"
	"chimera/internal/sim"
	"chimera/internal/stats"
)

// schemeList is Table 2 order with chimera last (the paper's bar order).
var schemeList = []string{"pipedream", "pipedream-2bw", "gpipe", "gems", "dapple", "chimera"}

// bestForScheme finds the best configuration for one scheme at (P, B̂),
// using the planner-style sweep; chimera additionally considers
// concatenation modes when N > D.
func bestForScheme(m model.Config, plat platform, p, bhat int, scheme string, ds, bs []int) *sweepResult {
	if scheme == "pipedream" {
		return pipeDreamBest(m, plat, p, ds, bs)
	}
	if scheme != "chimera" {
		return bestPoint(m, plat, p, bhat, scheme, ds, bs)
	}
	var rcs []runConfig
	for _, d := range ds {
		for _, b := range bs {
			for _, mode := range []schedule.ConcatMode{schedule.Direct, schedule.ForwardDoubling, schedule.BackwardHalving} {
				rcs = append(rcs, runConfig{scheme: "chimera", d: d, b: b, concat: mode})
			}
		}
	}
	grid := buildGrid(m, plat, p, func(_, _ int) int { return bhat }, rcs)
	return sweepBest(p, grid)
}

// Figure1 reproduces the headline chart: GPT-2 on 2,048 workers at
// B̂=2,048 — bubble ratio, peak memory and best throughput per scheme, with
// Chimera's speedups.
func Figure1() (*Report, error) {
	r := newReport("figure-1", "GPT-2 on 2,048 GPU nodes, B̂=2,048 (headline comparison)")
	m, plat := model.GPT2(), pizDaint()
	ds := []int{8, 16, 32}
	bs := powersOfTwo(2)
	var chimera *sweepResult
	results := map[string]*sweepResult{}
	for _, scheme := range schemeList {
		best := bestForScheme(m, plat, 2048, 2048, scheme, ds, bs)
		results[scheme] = best
		if scheme == "chimera" {
			chimera = best
		}
		if best == nil {
			r.addf("%-14s infeasible", scheme)
			continue
		}
		var peak int64
		for _, mm := range best.res.PeakMemBytes {
			if mm > peak {
				peak = mm
			}
		}
		r.addf("%-14s %s  peak-mem=%s", scheme, fmtPoint(best), stats.GiB(peak))
		r.Metrics["throughput:"+scheme] = best.res.Throughput
		r.Metrics["bubble:"+scheme] = best.res.BubbleRatio
	}
	if chimera != nil {
		for _, scheme := range schemeList {
			if scheme == "chimera" || results[scheme] == nil {
				continue
			}
			r.addf("chimera speedup over %-14s: %s (paper: pipedream 2.01x, 2bw 1.16x, gpipe 1.42x, gems 2.34x, dapple 1.38x)",
				scheme, stats.Speedup(results[scheme].res.Throughput, chimera.res.Throughput))
			r.Metrics["speedup:"+scheme] = chimera.res.Throughput / results[scheme].res.Throughput
		}
	}
	return r, nil
}

// Figure12 reproduces the gradient-synchronization strategy comparison:
// eager-sync vs eager-sync-opt for Bert-48, D=4, B=8, P ∈ {16, 32, 64}
// with B̂ scaling 256→1,024 (plus post-hoc as the Fig. 4a baseline).
func Figure12() (*Report, error) {
	r := newReport("figure-12", "Gradient synchronization strategies (Bert-48, D=4, B=8)")
	m, plat := model.BERT48(), pizDaint()
	for _, p := range []int{16, 32, 64} {
		bhat := 256 * p / 16
		w := p / 4
		n := bhat / (w * 8)
		// The three strategies share one schedule (cached by key) and are
		// independent evaluations, so they run as one engine sweep.
		spec := engine.Spec{
			Sched: engine.ChimeraKey(4, n, 0, schedule.Direct),
			Model: m, MicroBatch: 8, W: w,
			Device: plat.dev, Network: plat.net,
		}
		specs := make([]engine.Spec, 3)
		for i, strategy := range []sim.SyncStrategy{sim.SyncEagerOpt, sim.SyncEager, sim.SyncPostHoc} {
			specs[i] = spec
			specs[i].Sync = strategy
		}
		outs := eng.Sweep(specs)
		for _, o := range outs {
			if o.Err != nil {
				return nil, o.Err
			}
		}
		opt, eager, post := outs[0].Result, outs[1].Result, outs[2].Result
		r.addf("%d nodes (B̂=%d): eager-sync-opt=%.1f seq/s  eager-sync=%.1f (opt %.2fx)  post-hoc=%.1f (opt %.2fx)",
			p, bhat, opt.Throughput, eager.Throughput, opt.Throughput/eager.Throughput,
			post.Throughput, opt.Throughput/post.Throughput)
		r.Metrics[itoaKey("opt-over-eager", p)] = opt.Throughput / eager.Throughput
	}
	r.addf("paper: eager-sync-opt up to 1.09x over eager-sync on 64 nodes")
	return r, nil
}

func itoaKey(prefix string, v int) string { return fmt.Sprintf("%s:%d", prefix, v) }

// weakScaling runs one weak-scaling panel: per node count, the best
// configuration per scheme.
func weakScaling(r *Report, m model.Config, plat platform, nodes []int, bhatAt func(int) int, ds, bs []int) {
	for _, p := range nodes {
		bhat := bhatAt(p)
		r.addf("%d nodes, B̂=%d:", p, bhat)
		var chim, bestBase *sweepResult
		var bestBaseName string
		for _, scheme := range schemeList {
			best := bestForScheme(m, plat, p, bhat, scheme, ds, bs)
			r.addf("  %-14s %s", scheme, fmtPoint(best))
			if best == nil {
				continue
			}
			r.Metrics[fmt.Sprintf("%s:%d", scheme, p)] = best.res.Throughput
			if scheme == "chimera" {
				chim = best
			} else if bestBase == nil || best.res.Throughput > bestBase.res.Throughput {
				bestBase, bestBaseName = best, scheme
			}
		}
		if chim != nil && bestBase != nil {
			r.addf("  chimera vs best baseline (%s): %s", bestBaseName,
				stats.Speedup(bestBase.res.Throughput, chim.res.Throughput))
		}
	}
}

// Figure14 reproduces weak scaling for Bert-48 on Piz Daint: P 16→64,
// B̂ 256→1,024.
func Figure14() (*Report, error) {
	r := newReport("figure-14", "Weak scaling, Bert-48 on Piz Daint")
	weakScaling(r, model.BERT48(), pizDaint(), []int{16, 32, 64},
		func(p int) int { return 16 * p }, []int{2, 4, 8, 16}, powersOfTwo(32))
	return r, nil
}

// Figure15 reproduces weak scaling for GPT-2 on Piz Daint: P 512→2,048,
// B̂ 512→2,048, and the 91.4% parallel-efficiency observation for Chimera.
func Figure15() (*Report, error) {
	r := newReport("figure-15", "Weak scaling, GPT-2 on Piz Daint")
	m, plat := model.GPT2(), pizDaint()
	ds := []int{8, 16, 32}
	bs := powersOfTwo(2)
	weakScaling(r, m, plat, []int{512, 1024, 2048}, func(p int) int { return p }, ds, bs)
	base := r.Metrics["chimera:512"]
	top := r.Metrics["chimera:2048"]
	if base > 0 {
		eff := top / (4 * base)
		r.addf("chimera parallel efficiency 512→2048 nodes: %.1f%% (paper: 91.4%%)", eff*100)
		r.Metrics["parallel-efficiency"] = eff
	}
	return r, nil
}

// Figure16 reproduces weak scaling for Bert-48 (sequence length 512) on the
// 32×V100 cluster: P 16→32, B̂ 128→256.
func Figure16() (*Report, error) {
	r := newReport("figure-16", "Weak scaling, Bert-48 (seq 512) on 32 V100 GPUs")
	weakScaling(r, model.BERT48Seq512(), v100Cluster(), []int{16, 32},
		func(p int) int { return 8 * p }, []int{2, 4, 8}, powersOfTwo(16))
	return r, nil
}
