package experiments

import "testing"

// TestBenchmarkObs: the machine-independent properties of the overhead
// benchmark — bookkeeping, the instrumented side actually recording, and
// outcome identity. (The ≤1.05 overhead bound is timing-dependent and
// asserted in CI against BENCH_sweep.json.)
func TestBenchmarkObs(t *testing.T) {
	b := BenchmarkObs(1)
	if b.Rounds != 1 || b.Configs < 64 {
		t.Fatalf("bookkeeping drifted: %+v", b)
	}
	if b.PlainSeconds <= 0 || b.ObservedSeconds <= 0 || b.Overhead <= 0 {
		t.Fatalf("degenerate timings: %+v", b)
	}
	if !b.IdenticalOutcomes {
		t.Fatal("instrumented sweep outcomes diverged from plain")
	}
	if b.SeriesRecorded == 0 {
		t.Fatal("instrumented side recorded nothing — registry not attached?")
	}
}
