package experiments

import (
	"chimera/internal/engine"
	"chimera/internal/obs"
)

// ObsBenchmark quantifies instrumentation overhead: the same uncached,
// single-worker sweep on a plain engine and on an engine with a live metric
// registry attached. The sides alternate round by round and each reports
// its best (minimum) wall-clock, so transient scheduler noise cannot be
// misread as overhead. CI gates Overhead ≤ 1.05 — observability must be
// effectively free — and IdenticalOutcomes, the proof that attaching a
// registry perturbs no result.
type ObsBenchmark struct {
	Configs int `json:"configs"`
	Rounds  int `json:"rounds"`
	// PlainSeconds and ObservedSeconds are each side's best round.
	PlainSeconds    float64 `json:"plain_seconds"`
	ObservedSeconds float64 `json:"observed_seconds"`
	// Overhead is ObservedSeconds / PlainSeconds (1.0 = free).
	Overhead float64 `json:"overhead"`
	// IdenticalOutcomes reports that the instrumented sweep's outcomes
	// match the plain sweep's bit for bit (ranking and throughputs).
	IdenticalOutcomes bool `json:"identical_outcomes"`
	// SeriesRecorded counts metric series carrying data after the
	// instrumented sweeps — proof the instrumented side actually measured.
	SeriesRecorded int `json:"series_recorded"`
}

// BenchmarkObs runs the instrumentation-overhead benchmark. rounds <= 0
// selects the default of 3. Both sides run uncached on one worker so the
// comparison isolates the record-path cost (clock reads plus atomic adds)
// from cache and pool effects.
func BenchmarkObs(rounds int) *ObsBenchmark {
	if rounds <= 0 {
		rounds = 3
	}
	grid := benchGrid()
	specs := make([]engine.Spec, len(grid))
	for i, g := range grid {
		specs[i] = g.spec
	}

	b := &ObsBenchmark{Configs: len(specs), Rounds: rounds}
	var plainOuts, obsOuts []engine.Outcome
	reg := obs.NewRegistry()
	for r := 0; r < rounds; r++ {
		outs, sec := runSide(engine.New(engine.Workers(1), engine.NoCache()), specs, 1)
		if b.PlainSeconds == 0 || sec < b.PlainSeconds {
			b.PlainSeconds = sec
		}
		plainOuts = outs

		outs, sec = runSide(engine.New(engine.Workers(1), engine.NoCache(), engine.Observe(reg)), specs, 1)
		if b.ObservedSeconds == 0 || sec < b.ObservedSeconds {
			b.ObservedSeconds = sec
		}
		obsOuts = outs
	}
	if b.PlainSeconds > 0 {
		b.Overhead = b.ObservedSeconds / b.PlainSeconds
	}

	b.IdenticalOutcomes = true
	pr, or := rankOutcomes(plainOuts), rankOutcomes(obsOuts)
	for i := range pr {
		if pr[i] != or[i] {
			b.IdenticalOutcomes = false
			break
		}
		po, oo := plainOuts[pr[i]], obsOuts[or[i]]
		pOK := po.Err == nil && po.Result != nil
		oOK := oo.Err == nil && oo.Result != nil
		if pOK != oOK || (pOK && po.Result.Throughput != oo.Result.Throughput) {
			b.IdenticalOutcomes = false
			break
		}
	}

	snap := reg.Snapshot()
	for _, h := range snap.Histograms {
		if h.Count > 0 {
			b.SeriesRecorded++
		}
	}
	for _, v := range snap.Counters {
		if v > 0 {
			b.SeriesRecorded++
		}
	}
	return b
}
