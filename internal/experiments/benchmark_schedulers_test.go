package experiments

import "testing"

// TestBenchmarkSchedulers: the CI-gated property — on the severe straggler
// case, at least one list-scheduled placement strictly beats the best
// fixed-placement scheme — plus matrix bookkeeping.
func TestBenchmarkSchedulers(t *testing.T) {
	b, err := BenchmarkSchedulers()
	if err != nil {
		t.Fatal(err)
	}
	if !b.ListBeatsFixed {
		t.Fatalf("no list scheduler beat the best fixed scheme at ×%.1f: fixed %+v vs list %+v",
			b.SevereSeverity, b.BestFixed, b.BestList)
	}
	if !(b.Advantage > 1) {
		t.Fatalf("advantage %.3f not > 1", b.Advantage)
	}
	if b.BestList.Scheduler == "" || b.BestList.Scheduler == "fixed" {
		t.Fatalf("best list entry carries scheduler %q", b.BestList.Scheduler)
	}
	// 3 schemes × 4 schedulers × 4 severities.
	if want := 3 * 4 * 4; len(b.Points) != want {
		t.Fatalf("matrix has %d points, want %d", len(b.Points), want)
	}
	cells := make(map[string]bool, len(b.Points))
	for _, p := range b.Points {
		k := p.Scheme + "/" + p.Scheduler
		cells[k] = true
		if p.Throughput <= 0 && !p.OOM {
			t.Fatalf("cell %s at ×%.2f has zero throughput but no OOM mark", k, p.Severity)
		}
	}
	for _, scheme := range []string{"chimera", "gpipe", "dapple"} {
		for _, sched := range []string{"fixed", "heft", "cpop", "lb"} {
			if !cells[scheme+"/"+sched] {
				t.Fatalf("matrix missing cell %s/%s", scheme, sched)
			}
		}
	}
}
