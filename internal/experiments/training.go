package experiments

import (
	"math"

	"chimera/internal/data"
	"chimera/internal/optim"
	"chimera/internal/pipeline"
	"chimera/internal/schedule"
)

// TrainingEquivalence runs the convergence-friendliness claim end to end on
// the real runtime: a tiny GPT trained under Chimera and under sequential
// mini-batch SGD on identical data must produce matching losses and
// gradients, while the loss decreases.
func TrainingEquivalence(iters int) (*Report, error) {
	r := newReport("training-equivalence", "Real pipeline training ≡ sequential mini-batch SGD")
	spec := pipeline.ModelSpec{Vocab: 31, Dim: 16, Heads: 4, SeqLen: 8, Layers: 4, Seed: 1}
	sched, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		return nil, err
	}
	newOpt := func() optim.Optimizer { return &optim.Momentum{LR: 0.05, Mu: 0.9} }
	tr, err := pipeline.New(pipeline.Config{
		Schedule: sched, W: 2, Spec: spec, MicroBatch: 2, NewOptimizer: newOpt,
	})
	if err != nil {
		return nil, err
	}
	ref, err := pipeline.NewReference(spec, 4, 2, newOpt)
	if err != nil {
		return nil, err
	}
	stream := data.NewStream(spec.Vocab, spec.SeqLen, 99)
	var firstLoss, lastLoss, worstDiff float64
	for i := 0; i < iters; i++ {
		batch := stream.Next(2 * 4 * 2) // B·N·W
		ld, err := tr.TrainIteration(batch)
		if err != nil {
			return nil, err
		}
		lr, err := ref.TrainIteration(batch)
		if err != nil {
			return nil, err
		}
		if d := math.Abs(ld - lr); d > worstDiff {
			worstDiff = d
		}
		if i == 0 {
			firstLoss = ld
		}
		lastLoss = ld
		if i%5 == 0 || i == iters-1 {
			r.addf("iter %2d: chimera loss=%.4f sequential loss=%.4f |Δ|=%.2e", i, ld, lr, math.Abs(ld-lr))
		}
	}
	// Weight agreement after training.
	var maxW float64
	for st := 0; st < 4; st++ {
		a, b := tr.StageWeights(st, 0), ref.StageWeights(st)
		for i := range a {
			d := math.Abs(float64(a[i]) - float64(b[i]))
			if d > maxW {
				maxW = d
			}
		}
	}
	r.addf("loss %.4f → %.4f over %d iterations; worst loss gap %.2e; worst weight gap %.2e",
		firstLoss, lastLoss, iters, worstDiff, maxW)
	r.Metrics["first-loss"] = firstLoss
	r.Metrics["last-loss"] = lastLoss
	r.Metrics["worst-loss-gap"] = worstDiff
	r.Metrics["worst-weight-gap"] = maxW
	return r, nil
}

// All returns every experiment in DESIGN.md's index order. trainingIters
// bounds the real-training demo length.
func All(trainingIters int) []func() (*Report, error) {
	return []func() (*Report, error){
		func() (*Report, error) { return Table2(4, 4) },
		func() (*Report, error) { return Table3(16, 16) },
		Figure1,
		func() (*Report, error) { return Figure2(4, 4) },
		Figure6,
		Figure7,
		Figure8,
		Figure9,
		Figure10,
		Figure11,
		Figure12,
		Figure13,
		Figure14,
		Figure15,
		Figure16,
		Figure17,
		Figure18,
		Figure19,
		ModelAccuracy,
		AblationAllreduce,
		AblationGreedyB,
		AblationRecompute,
		AblationInterference,
		AblationZeRO,
		AblationCompression,
		AblationHeterogeneous,
		FleetAllocation,
		AblationElastic,
		func() (*Report, error) { return TrainingEquivalence(trainingIters) },
		func() (*Report, error) { return ConvergenceComparison(2 * trainingIters) },
	}
}
