package experiments

import (
	"fmt"
	"sort"
	"strings"

	"chimera/internal/perfmodel"
	"chimera/internal/schedule"
	"chimera/internal/trace"
)

// Figure2 renders the schedule timelines of Fig. 2 (all schemes, D=4, N=4,
// backward = 2× forward) plus Chimera's construction view of Fig. 3.
func Figure2(d, n int) (*Report, error) {
	r := newReport("figure-2", "Pipeline parallelism schemes (timelines, backward = 2× forward)")
	for _, name := range schedule.Schemes() {
		s, err := schedule.ByName(name, d, n)
		if err != nil {
			return nil, err
		}
		art, err := trace.ASCII(s, schedule.UnitPractical)
		if err != nil {
			return nil, err
		}
		r.Lines = append(r.Lines, strings.Split(strings.TrimRight(art, "\n"), "\n")...)
		tl, err := s.Replay(schedule.UnitPractical)
		if err != nil {
			return nil, err
		}
		r.Metrics["makespan:"+name] = float64(tl.Makespan)
	}
	return r, nil
}

// Figure6 reproduces the critical-path example of Fig. 6: Chimera with
// D = N = 6 has Cf = 6 forward and Cb = 10 backward passes on the critical
// path of a training iteration.
func Figure6() (*Report, error) {
	r := newReport("figure-6", "Critical path and free overlap regions (D=N=6)")
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 6, N: 6})
	if err != nil {
		return nil, err
	}
	cf, cb, err := perfmodel.CriticalPath(s)
	if err != nil {
		return nil, err
	}
	r.addf("critical path: Cf=%d forward passes, Cb=%d backward passes (paper: Cf=6, Cb=10)", cf, cb)
	tl, err := s.Replay(schedule.UnitPractical)
	if err != nil {
		return nil, err
	}
	ready := s.GradReady(tl)
	ends := tl.ComputeEnd()
	r.addf("free overlap regions per worker (gradient-ready → compute-end), practical units:")
	for w := 0; w < s.D; w++ {
		var parts []string
		for pl, t := range ready[w] {
			parts = append(parts, fmt.Sprintf("stage%d(r%d): %d", pl.Stage, pl.Replica, ends[w]-t))
		}
		sort.Strings(parts)
		r.addf("  P%d: %s", w, strings.Join(parts, "  "))
	}
	r.Metrics["cf"], r.Metrics["cb"] = float64(cf), float64(cb)
	return r, nil
}

// Figure7 shows the three N > D scaling methods of §3.5 (D=4, N=8): direct
// concatenation (intermediate bubbles), forward doubling, backward halving.
func Figure7() (*Report, error) {
	r := newReport("figure-7", "Scaling to N > D micro-batches (D=4, N=2D)")
	for _, mode := range []schedule.ConcatMode{schedule.Direct, schedule.ForwardDoubling, schedule.BackwardHalving} {
		s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 8, Concat: mode})
		if err != nil {
			return nil, err
		}
		art, err := trace.ASCII(s, schedule.UnitPractical)
		if err != nil {
			return nil, err
		}
		r.addf("--- %v ---", mode)
		r.Lines = append(r.Lines, strings.Split(strings.TrimRight(art, "\n"), "\n")...)
		tl, err := s.Replay(schedule.UnitPractical)
		if err != nil {
			return nil, err
		}
		r.Metrics["makespan:"+mode.String()] = float64(tl.Makespan)
	}
	// Under recomputation (backward = 3× forward) doubling wins — Fig. 18's
	// regime.
	recomp := schedule.CostModel{FUnit: 1, BUnit: 3}
	for _, mode := range []schedule.ConcatMode{schedule.Direct, schedule.ForwardDoubling} {
		s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 8, Concat: mode})
		if err != nil {
			return nil, err
		}
		tl, err := s.Replay(recomp)
		if err != nil {
			return nil, err
		}
		r.addf("with recomputation (B=3F): %-18v makespan=%d", mode, tl.Makespan)
		r.Metrics["recompute-makespan:"+mode.String()] = float64(tl.Makespan)
	}
	return r, nil
}

// Figure8 renders Chimera with four 8-stage pipelines (D=8, f=2) and
// verifies the overlay is conflict-free.
func Figure8() (*Report, error) {
	r := newReport("figure-8", "Chimera with a combination of four 8-stage pipelines (f=2)")
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 8, N: 8, F: 2})
	if err != nil {
		return nil, err
	}
	art, err := trace.ASCII(s, schedule.UnitEqual)
	if err != nil {
		return nil, err
	}
	r.Lines = append(r.Lines, strings.Split(strings.TrimRight(art, "\n"), "\n")...)
	conflicts, err := s.ConflictCount()
	if err != nil {
		return nil, err
	}
	r.addf("overlay conflicts: %d (paper: schedules of the 2f pipelines overlay without conflict)", conflicts)
	r.Metrics["conflicts"] = float64(conflicts)
	return r, nil
}
