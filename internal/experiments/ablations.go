package experiments

import (
	"fmt"

	"chimera/internal/model"
	"chimera/internal/perfmodel"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// AblationAllreduce compares Rabenseifner against ring allreduce cost in
// end-to-end iteration time — the §3.4 design choice.
func AblationAllreduce() (*Report, error) {
	r := newReport("ablation-allreduce", "Allreduce algorithm choice (Rabenseifner vs ring)")
	m, plat := model.GPT2(), pizDaint()
	sch, err := schedule.Chimera(schedule.ChimeraConfig{D: 8, N: 8})
	if err != nil {
		return nil, err
	}
	for _, alg := range []sim.AllReduceAlg{sim.ARRabenseifner, sim.ARRing} {
		for _, w := range []int{8, 64, 256} {
			res, err := sim.Run(sim.Config{Model: m, Schedule: sch, MicroBatch: 1, W: w,
				Device: plat.dev, Network: plat.net, Allreduce: alg, Recompute: true})
			if err != nil {
				return nil, err
			}
			name := "rabenseifner"
			if alg == sim.ARRing {
				name = "ring"
			}
			r.addf("%-13s W=%-4d iter=%.3fs sync=%.3fs", name, w, res.IterTime, res.SyncTime)
			r.Metrics[fmt.Sprintf("%s:%d", name, w)] = res.IterTime
		}
	}
	return r, nil
}

// AblationGreedyB validates Chimera's greedy max-B policy: the largest
// fitting micro-batch should be at least as good as any smaller power of
// two at fixed B̂ (the reduced tuning space of §3.4).
func AblationGreedyB() (*Report, error) {
	r := newReport("ablation-greedy-b", "Greedy max-B vs swept micro-batch sizes (Bert-48, 32 nodes, B̂=512)")
	m, plat := model.BERT48(), pizDaint()
	var best *sweepResult
	var bestB int
	for _, b := range powersOfTwo(32) {
		res, rec := evalPoint(m, plat, 32, 512, runConfig{scheme: "chimera", d: 4, b: b})
		if res == nil {
			r.addf("B=%-3d infeasible", b)
			continue
		}
		r.addf("B=%-3d%-3s %7.1f seq/s", b, recompStr(rec), res.Throughput)
		r.Metrics[fmt.Sprintf("b=%d", b)] = res.Throughput
		if best == nil || res.Throughput > best.res.Throughput {
			best = &sweepResult{res: res, b: b}
			bestB = b
		}
	}
	// The greedy pick: largest feasible without recompute.
	greedy := 0
	for _, b := range powersOfTwo(32) {
		sch, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 512 / (8 * b), Concat: schedule.Direct})
		if err != nil {
			continue
		}
		plain, _, err := sim.FitsMemory(sim.Config{Model: m, Schedule: sch, MicroBatch: b, W: 8,
			Device: plat.dev, Network: plat.net})
		if err == nil && plain {
			greedy = b
		}
	}
	r.addf("greedy max-B picks B=%d; sweep optimum B=%d", greedy, bestB)
	r.Metrics["greedy"] = float64(greedy)
	r.Metrics["optimum"] = float64(bestB)
	return r, nil
}

// AblationRecompute quantifies the ≈1/3 backward overhead of activation
// recomputation against its memory savings.
func AblationRecompute() (*Report, error) {
	r := newReport("ablation-recompute", "Activation recomputation cost/benefit (GPT-2, D=32)")
	m, plat := model.GPT2(), pizDaint()
	sch, err := schedule.Chimera(schedule.ChimeraConfig{D: 32, N: 32, Concat: schedule.Direct})
	if err != nil {
		return nil, err
	}
	for _, rec := range []bool{false, true} {
		res, err := sim.Run(sim.Config{Model: m, Schedule: sch, MicroBatch: 1, W: 2,
			Device: plat.dev, Network: plat.net, Recompute: rec})
		if err != nil {
			return nil, err
		}
		var peak int64
		for _, b := range res.PeakMemBytes {
			if b > peak {
				peak = b
			}
		}
		r.addf("recompute=%-5v iter=%.3fs peak=%.2f GiB oom=%v", rec, res.IterTime, float64(peak)/(1<<30), res.OOM)
		r.Metrics[fmt.Sprintf("iter:recompute=%v", rec)] = res.IterTime
	}
	return r, nil
}

// AblationInterference sweeps the eager-sync progression-overhead
// parameter η, showing when eager-sync-opt's advantage appears.
func AblationInterference() (*Report, error) {
	r := newReport("ablation-interference", "Eager-sync progression overhead η sweep (Bert-48, D=4)")
	m, plat := model.BERT48(), pizDaint()
	sch, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 8, Concat: schedule.Direct})
	if err != nil {
		return nil, err
	}
	for _, eta := range []float64{0.05, 0.15, 0.3} {
		opt, err := sim.Run(sim.Config{Model: m, Schedule: sch, MicroBatch: 8, W: 16,
			Device: plat.dev, Network: plat.net, Sync: sim.SyncEagerOpt, Interference: eta})
		if err != nil {
			return nil, err
		}
		eager, err := sim.Run(sim.Config{Model: m, Schedule: sch, MicroBatch: 8, W: 16,
			Device: plat.dev, Network: plat.net, Sync: sim.SyncEager, Interference: eta})
		if err != nil {
			return nil, err
		}
		r.addf("η=%.2f: eager-opt/eager speedup %.3fx", eta, opt.Throughput/eager.Throughput)
		r.Metrics[fmt.Sprintf("eta=%.2f", eta)] = opt.Throughput / eager.Throughput
	}
	return r, nil
}

// ModelAccuracy reports the §4.2.2 performance-model error across a
// configuration grid.
func ModelAccuracy() (*Report, error) {
	r := newReport("model-accuracy", "Performance model error (paper: within 10%)")
	m, plat := model.BERT48(), pizDaint()
	var worst float64
	for _, c := range []struct{ w, d, b int }{{16, 2, 16}, {8, 4, 8}, {4, 8, 16}, {2, 16, 16}} {
		n := 512 / c.w / c.b
		sch, err := schedule.Chimera(schedule.ChimeraConfig{D: c.d, N: n, Concat: schedule.Direct})
		if err != nil {
			return nil, err
		}
		e, err := perfmodel.ModelError(sim.Config{Model: m, Schedule: sch, MicroBatch: c.b, W: c.w,
			Device: plat.dev, Network: plat.net})
		if err != nil {
			return nil, err
		}
		r.addf("W=%-3d D=%-3d B=%-3d error=%.1f%%", c.w, c.d, c.b, e*100)
		if e > worst {
			worst = e
		}
	}
	r.addf("worst error %.1f%% (paper: <10%%)", worst*100)
	r.Metrics["worst-error"] = worst
	return r, nil
}

// AblationZeRO quantifies ZeRO-1 optimizer-state sharding (the paper's §2
// future-work direction): peak-memory reduction versus the parameter
// allgather it adds to each iteration.
func AblationZeRO() (*Report, error) {
	r := newReport("ablation-zero", "ZeRO-1 optimizer-state sharding (GPT-2, D=16, W=32)")
	m, plat := model.GPT2(), pizDaint()
	sch, err := schedule.Chimera(schedule.ChimeraConfig{D: 16, N: 16, Concat: schedule.Direct})
	if err != nil {
		return nil, err
	}
	for _, zero := range []bool{false, true} {
		res, err := sim.Run(sim.Config{Model: m, Schedule: sch, MicroBatch: 1, W: 32,
			Device: plat.dev, Network: plat.net, ZeRO: zero})
		if err != nil {
			return nil, err
		}
		var peak int64
		for _, b := range res.PeakMemBytes {
			if b > peak {
				peak = b
			}
		}
		r.addf("zero=%-5v iter=%.3fs peak=%.2f GiB throughput=%.1f seq/s",
			zero, res.IterTime, float64(peak)/(1<<30), res.Throughput)
		r.Metrics[fmt.Sprintf("peak:zero=%v", zero)] = float64(peak)
		r.Metrics[fmt.Sprintf("iter:zero=%v", zero)] = res.IterTime
	}
	return r, nil
}

// AblationCompression models the conclusion's next step — gradient
// sparsification/quantization — as allreduce bandwidth reduction, at the
// sync-bound GPT-2 configuration.
func AblationCompression() (*Report, error) {
	r := newReport("ablation-compression", "Gradient compression (GPT-2, D=8, W=64)")
	m, plat := model.GPT2(), pizDaint()
	sch, err := schedule.Chimera(schedule.ChimeraConfig{D: 8, N: 8})
	if err != nil {
		return nil, err
	}
	for _, c := range []struct {
		name   string
		factor float64
	}{{"fp32 (exact)", 1.0}, {"int8 quantized", 0.26}, {"top-1% sparse", 0.02}} {
		res, err := sim.Run(sim.Config{Model: m, Schedule: sch, MicroBatch: 1, W: 64,
			Device: plat.dev, Network: plat.net, Recompute: true, CompressionFactor: c.factor})
		if err != nil {
			return nil, err
		}
		r.addf("%-15s iter=%.3fs sync=%.3fs throughput=%.1f seq/s",
			c.name, res.IterTime, res.SyncTime, res.Throughput)
		r.Metrics["iter:"+c.name] = res.IterTime
	}
	r.addf("runtime counterparts: pipeline.CompressInt8 / CompressTopK (lossy but replica-consistent)")
	return r, nil
}
