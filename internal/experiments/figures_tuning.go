package experiments

import (
	"fmt"

	"chimera/internal/engine"
	"chimera/internal/model"
	"chimera/internal/perfmodel"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// Figure10 reproduces the baseline tuning sweep for Bert-48 on 32 workers
// (B̂=512): throughput across (W, D, B) for each baseline, with the best
// point starred — §4.2.1's observation that baselines face a large tuning
// space.
func Figure10() (*Report, error) {
	r := newReport("figure-10", "Performance tuning of the baselines, Bert-48 on 32 nodes (B̂=512)")
	m, plat := model.BERT48(), pizDaint()
	ds := []int{2, 4, 8, 16}
	bs := powersOfTwo(64)
	for _, scheme := range []string{"gpipe", "dapple", "gems", "pipedream-2bw"} {
		r.addf("%s:", scheme)
		best := bestPoint(m, plat, 32, 512, scheme, ds, bs)
		for _, d := range ds {
			for _, b := range bs {
				res, rec := evalPoint(m, plat, 32, 512, runConfig{scheme: scheme, d: d, b: b})
				if res == nil {
					continue
				}
				star := " "
				if best != nil && d == best.d && b == best.b {
					star = "*"
				}
				r.addf(" %s W=%-3d D=%-3d B=%-3d%-3s  %7.1f seq/s", star, 32/d, d, b, recompStr(rec), res.Throughput)
			}
		}
		if best != nil {
			r.Metrics["best:"+scheme] = best.res.Throughput
		}
	}
	// PipeDream's B̂ is memory limited.
	pd := pipeDreamBest(m, plat, 32, []int{2, 4, 8, 16}, powersOfTwo(16))
	r.addf("pipedream (memory-limited B̂): %s", fmtPoint(pd))
	if pd != nil {
		r.Metrics["best:pipedream"] = pd.res.Throughput
		r.Metrics["pipedream:bhat"] = float64(pd.res.MiniBatch)
	}
	return r, nil
}

// Figure11 reproduces the GPT-2 baseline tuning on 512 workers (B̂=512).
func Figure11() (*Report, error) {
	r := newReport("figure-11", "Performance tuning of the baselines, GPT-2 on 512 nodes (B̂=512)")
	m, plat := model.GPT2(), pizDaint()
	ds := []int{4, 8, 16, 32}
	bs := powersOfTwo(8)
	for _, scheme := range []string{"gpipe", "dapple", "gems", "pipedream-2bw"} {
		best := bestPoint(m, plat, 512, 512, scheme, ds, bs)
		r.addf("%-14s best: %s", scheme, fmtPoint(best))
		if best != nil {
			r.Metrics["best:"+scheme] = best.res.Throughput
		}
		for _, d := range ds {
			for _, b := range bs {
				res, rec := evalPoint(m, plat, 512, 512, runConfig{scheme: scheme, d: d, b: b})
				if res == nil {
					continue
				}
				r.addf("   D=%-3d B=%-3d%-3s %7.1f seq/s", d, b, recompStr(rec), res.Throughput)
			}
		}
	}
	pd := pipeDreamBest(m, plat, 512, ds, powersOfTwo(4))
	r.addf("pipedream (memory-limited B̂): %s", fmtPoint(pd))
	if pd != nil {
		r.Metrics["best:pipedream"] = pd.res.Throughput
	}
	return r, nil
}

// Figure13 compares the §3.4 performance model's predictions against
// simulated ("practical") throughput for Chimera configurations — the
// paper reports <10% error and correct (W, D) ranking for Bert-48.
func Figure13() (*Report, error) {
	r := newReport("figure-13", "Performance model vs practical throughput (Chimera)")
	type panel struct {
		m       model.Config
		p, bhat int
		configs []struct{ w, d, b int }
	}
	panels := []panel{
		{model.BERT48(), 32, 256, []struct{ w, d, b int }{
			{2, 16, 16}, {4, 8, 16}, {8, 4, 8}, {16, 2, 4},
		}},
		{model.GPT2(), 512, 512, []struct{ w, d, b int }{
			{8, 64, 1}, {16, 32, 1}, {32, 16, 1}, {64, 8, 1},
		}},
	}
	for _, pn := range panels {
		r.addf("%s on %d workers, B̂=%d:", pn.m.Name, pn.p, pn.bhat)
		var bestSim, bestPred float64
		var bestSimCfg, bestPredCfg string
		for _, c := range pn.configs {
			if pn.m.Layers%c.d != 0 || pn.bhat%(c.w*c.b) != 0 {
				continue
			}
			n := pn.bhat / (c.w * c.b)
			key := engine.ChimeraKey(c.d, n, 0, schedule.Direct)
			sch, err := eng.Schedule(key)
			if err != nil {
				continue
			}
			cfg := sim.Config{Model: pn.m, Schedule: sch, MicroBatch: c.b, W: c.w,
				Device: pizDaint().dev, Network: pizDaint().net}
			plain, withRec, err := sim.FitsMemory(cfg)
			if err != nil || (!plain && !withRec) {
				continue
			}
			cfg.Recompute = !plain
			spec := engine.Spec{Sched: key, Model: pn.m, MicroBatch: c.b, W: c.w,
				Recompute: cfg.Recompute, Device: cfg.Device, Network: cfg.Network}
			o := eng.Evaluate(spec)
			if o.Err != nil {
				return nil, o.Err
			}
			res := o.Result
			// The model prediction reuses the engine's memoized critical
			// path for this schedule (both panels share keys with other
			// figures and the planner).
			cf, cb, err := eng.CriticalPath(key)
			if err != nil {
				return nil, err
			}
			pred, err := perfmodel.PredictWithCritical(cfg, cf, cb)
			if err != nil {
				return nil, err
			}
			errPct := 100 * abs(pred.IterTime-res.IterTime) / res.IterTime
			name := fmt.Sprintf("W=%d,D=%d,B=%d%s", c.w, c.d, c.b, recompStr(cfg.Recompute))
			r.addf("  %-22s practical=%7.1f seq/s  model=%7.1f seq/s  error=%.1f%%",
				name, res.Throughput, pred.Throughput, errPct)
			r.Metrics["error%:"+name] = errPct
			if res.Throughput > bestSim {
				bestSim, bestSimCfg = res.Throughput, name
			}
			if pred.Throughput > bestPred {
				bestPred, bestPredCfg = pred.Throughput, name
			}
		}
		r.addf("  model selects %s; practical best %s (match=%v)", bestPredCfg, bestSimCfg, bestPredCfg == bestSimCfg)
	}
	return r, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
