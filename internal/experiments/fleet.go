package experiments

import (
	"fmt"

	"chimera/internal/fleet"
	"chimera/internal/model"
)

// fleetMixes are the job mixes the fleet-allocation experiment compares
// policies on: a priority-skewed production mix, a size-skewed mix where
// one job dwarfs the others, and a uniform many-small mix where equal
// split is close to right and the planner must not lose.
func fleetMixes() []struct {
	name string
	jobs []fleet.Job
} {
	return []struct {
		name string
		jobs []fleet.Job
	}{
		{"priority-skew", []fleet.Job{
			{Name: "bert-prod", Model: model.BERT48(), MiniBatch: 512, Priority: 4},
			{Name: "bert-dev", Model: model.BERT48(), MiniBatch: 64, Priority: 1},
			{Name: "gpt2-dev", Model: model.GPT2Small32(), MiniBatch: 64, Priority: 1},
		}},
		{"size-skew", []fleet.Job{
			{Name: "gpt2-big", Model: model.GPT2(), MiniBatch: 512, Priority: 2},
			{Name: "bert-small", Model: model.BERT48(), MiniBatch: 32, Priority: 1},
		}},
		{"many-small", []fleet.Job{
			{Name: "a", Model: model.BERT48(), MiniBatch: 64, Priority: 1},
			{Name: "b", Model: model.BERT48(), MiniBatch: 64, Priority: 1},
			{Name: "c", Model: model.BERT48(), MiniBatch: 64, Priority: 1},
			{Name: "d", Model: model.BERT48(), MiniBatch: 64, Priority: 1},
		}},
	}
}

// FleetAllocation compares the two fleet-allocation policies across job
// mixes and platforms: fleet-wide weighted throughput under the naive
// equal split versus the planner-guided greedy allocator, plus one trace
// replay per platform comparing makespan and utilization.
func FleetAllocation() (*Report, error) {
	r := newReport("fleet-allocation", "Fleet allocation: equal-split vs planner-guided (32 nodes)")
	const nodes = 32
	platforms := []struct {
		name string
		plat platform
	}{
		{"pizdaint", pizDaint()},
		{"v100", v100Cluster()},
	}
	alloc := fleet.NewAllocator(eng)
	for _, pl := range platforms {
		cluster := fleet.Cluster{Nodes: nodes, Device: pl.plat.dev, Network: pl.plat.net}
		for _, mix := range fleetMixes() {
			var tp [2]float64
			for i, policy := range []fleet.Policy{fleet.EqualSplit, fleet.PlannerGuided} {
				al, err := alloc.Allocate(fleet.Request{Cluster: cluster, Jobs: mix.jobs, Policy: policy})
				if err != nil {
					return nil, fmt.Errorf("fleet-allocation %s/%s: %w", pl.name, mix.name, err)
				}
				tp[i] = al.WeightedThroughput
			}
			adv := tp[1] / tp[0]
			r.addf("%-9s %-14s equal-split %8.1f  planner-guided %8.1f  advantage %.3fx",
				pl.name, mix.name, tp[0], tp[1], adv)
			r.Metrics[fmt.Sprintf("%s:%s:equal", pl.name, mix.name)] = tp[0]
			r.Metrics[fmt.Sprintf("%s:%s:guided", pl.name, mix.name)] = tp[1]
			r.Metrics[fmt.Sprintf("%s:%s:advantage", pl.name, mix.name)] = adv
		}
		// One trace replay per platform: the priority-skew mix arriving
		// over ten minutes.
		mix := fleetMixes()[0]
		sc := fleet.Scenario{
			Cluster: cluster, Jobs: mix.jobs,
			Trace: []fleet.Arrival{
				{At: 0, Job: "bert-prod", Work: 50000},
				{At: 0, Job: "gpt2-dev", Work: 5000},
				{At: 300, Job: "bert-dev", Work: 10000},
				{At: 600, Job: "gpt2-dev", Work: 2500},
			},
		}
		var make_ [2]float64
		var util [2]float64
		for i, policy := range []fleet.Policy{fleet.EqualSplit, fleet.PlannerGuided} {
			sc.Policy = policy
			res, err := alloc.Simulate(sc)
			if err != nil {
				return nil, fmt.Errorf("fleet-allocation %s trace: %w", pl.name, err)
			}
			make_[i], util[i] = res.Makespan, res.Utilization
		}
		r.addf("%-9s trace replay   equal-split makespan %7.1fs (util %3.0f%%)  planner-guided %7.1fs (util %3.0f%%)",
			pl.name, make_[0], 100*util[0], make_[1], 100*util[1])
		r.Metrics[pl.name+":makespan:equal"] = make_[0]
		r.Metrics[pl.name+":makespan:guided"] = make_[1]
	}
	r.addf("the greedy allocator converts equal-split's wasted quanta (shares a job")
	r.addf("cannot use, priority-blind splits) into weighted fleet throughput")
	return r, nil
}
