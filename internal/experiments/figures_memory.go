package experiments

import (
	"chimera/internal/model"
	"chimera/internal/schedule"
	"chimera/internal/sim"
	"chimera/internal/stats"
)

// fig9Config is one panel of Figure 9.
type fig9Config struct {
	m       model.Config
	w, d, b int
	bhat    int
}

func figure9Configs() []fig9Config {
	return []fig9Config{
		{model.BERT48(), 2, 16, 8, 512},
		{model.BERT48(), 4, 8, 8, 512},
		{model.BERT48(), 4, 8, 16, 512},
		{model.GPT2Small32(), 1, 32, 1, 512},
		{model.GPT2Small32(), 2, 16, 1, 512},
		{model.GPT2Small32(), 2, 16, 2, 512},
	}
}

// Figure9 reproduces the memory consumption distribution across 32 workers
// for the paper's six configurations: per scheme, min and max per-worker
// memory and whether the configuration overflows a 16 GB P100 (OOM).
func Figure9() (*Report, error) {
	r := newReport("figure-9", "Memory consumption distribution among 32 GPU nodes (min/max per worker)")
	plat := pizDaint()
	for _, c := range figure9Configs() {
		n := c.bhat / (c.w * c.b)
		r.addf("%s (W=%d, D=%d, B=%d, B̂=%d):", c.m.Name, c.w, c.d, c.b, c.bhat)
		for _, name := range schedule.Schemes() {
			s, err := schedule.ByName(name, c.d, n)
			if err != nil {
				return nil, err
			}
			cfg := sim.Config{Model: c.m, Schedule: s, MicroBatch: c.b, W: c.w,
				Device: plat.dev, Network: plat.net}
			stages, err := c.m.Partition(c.d)
			if err != nil {
				return nil, err
			}
			mem := sim.PeakMemory(&cfg, stages)
			lo, hi := mem[0], mem[0]
			peakWorker := 0
			for w, m := range mem {
				if m < lo {
					lo = m
				}
				if m > hi {
					hi = m
					peakWorker = w
				}
			}
			oom := ""
			if hi > plat.dev.MemBytes {
				oom = "  OOM"
			}
			r.addf("  %-14s min=%-10s max=%-10s (peak on worker %d)%s",
				name, stats.GiB(lo), stats.GiB(hi), peakWorker, oom)
			r.Metrics[c.m.Name+":"+name+":max"] = float64(hi)
			r.Metrics[c.m.Name+":"+name+":min"] = float64(lo)
		}
	}
	r.addf("expected shapes: GPipe OOM everywhere (act ∝ N); PipeDream highest weights (≤D versions);")
	r.addf("DAPPLE/2BW peak on worker 0 (double imbalance); Chimera balanced; GEMS lowest.")
	return r, nil
}
