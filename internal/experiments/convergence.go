package experiments

import (
	"chimera/internal/data"
	"chimera/internal/optim"
	"chimera/internal/pipeline"
	"chimera/internal/schedule"
)

// ConvergenceComparison makes §2's convergence-friendliness argument
// empirical on the real runtime: the same tiny GPT trained for the same
// number of iterations on the same data stream under (a) Chimera
// (synchronous — exact mini-batch SGD), and (b) PipeDream with weight
// stashing (asynchronous — stale weights). The paper's position: both
// typically converge, but only the synchronous scheme is *guaranteed* to
// match SGD; staleness introduces variance.
func ConvergenceComparison(iters int) (*Report, error) {
	r := newReport("convergence", "Synchronous (Chimera) vs asynchronous (PipeDream) convergence")
	spec := pipeline.ModelSpec{Vocab: 31, Dim: 16, Heads: 4, SeqLen: 8, Layers: 4, Seed: 5}
	const d, n, b = 4, 4, 2
	lr := func() optim.Optimizer { return &optim.SGD{LR: 0.08} }

	chimSched, err := schedule.Chimera(schedule.ChimeraConfig{D: d, N: n})
	if err != nil {
		return nil, err
	}
	chim, err := pipeline.New(pipeline.Config{
		Schedule: chimSched, W: 1, Spec: spec, MicroBatch: b, NewOptimizer: lr,
	})
	if err != nil {
		return nil, err
	}
	pdSched, err := schedule.PipeDream(d, n)
	if err != nil {
		return nil, err
	}
	async, err := pipeline.NewAsyncTrainer(pipeline.AsyncConfig{
		Schedule: pdSched, W: 1, Spec: spec, MicroBatch: b, NewOptimizer: lr,
	})
	if err != nil {
		return nil, err
	}
	ref, err := pipeline.NewReference(spec, d, b, lr)
	if err != nil {
		return nil, err
	}

	// Identical data for all three trainers.
	sa := data.NewStream(spec.Vocab, spec.SeqLen, 500)
	sb := data.NewStream(spec.Vocab, spec.SeqLen, 500)
	sc := data.NewStream(spec.Vocab, spec.SeqLen, 500)
	var cLoss, aLoss, rLoss float64
	for i := 0; i < iters; i++ {
		if cLoss, err = chim.TrainIteration(sa.Next(b * n)); err != nil {
			return nil, err
		}
		if aLoss, err = async.TrainIteration(sb.Next(b * n)); err != nil {
			return nil, err
		}
		if rLoss, err = ref.TrainIteration(sc.Next(b * n)); err != nil {
			return nil, err
		}
		if i%4 == 0 || i == iters-1 {
			r.addf("iter %2d: chimera=%.4f pipedream=%.4f sequential-SGD=%.4f", i, cLoss, aLoss, rLoss)
		}
	}
	gap := cLoss - rLoss
	if gap < 0 {
		gap = -gap
	}
	r.addf("final: chimera tracks sequential SGD to %.1e; pipedream deviates by %.4f (stale weights)",
		gap, aLoss-rLoss)
	r.Metrics["chimera-final"] = cLoss
	r.Metrics["pipedream-final"] = aLoss
	r.Metrics["sgd-final"] = rLoss
	r.Metrics["chimera-sgd-gap"] = gap
	return r, nil
}
