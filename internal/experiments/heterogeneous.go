package experiments

import (
	"fmt"

	"chimera/internal/engine"
	"chimera/internal/model"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// AblationHeterogeneous opens the heterogeneous-cluster scenario: a
// straggler-severity sweep asking how much of Chimera's bubble advantage
// survives one slow worker. One pipeline worker (a middle stage, where a
// bidirectional pipeline has the least slack) runs 1.1×–2× slower than its
// peers; every scheme is re-simulated through the engine's per-worker
// speed-factor seam and compared against its own homogeneous throughput and
// against DAPPLE/1F1B at the same severity.
//
// The sweep is a scheme × scheduler matrix: besides each scheme's fixed
// placement, every list policy's re-shaped placement is evaluated at the
// same severity. On Bert-48 the re-shapes stack six-layer stage groups'
// weights and mostly lose to the fixed placement — the memory-bound regime;
// the schedulers benchmark (GPT-2-32) shows the headroom regime where they
// win. Both sets of numbers are reported.
func AblationHeterogeneous() (*Report, error) {
	r := newReport("ablation-heterogeneous", "Straggler severity sweep (Bert-48, D=8, W=4, one slow middle worker)")
	m, plat := model.BERT48(), pizDaint()
	const (
		d = 8
		n = 16
		b = 4
		w = 4
	)
	schemes := []string{"chimera", "gpipe", "dapple"}
	severities := []float64{1.0, 1.1, 1.25, 1.5, 2.0}
	slow := d / 2

	// base[scheme] is the homogeneous throughput the retained fraction is
	// measured against.
	base := make(map[string]float64, len(schemes))
	for _, sev := range severities {
		factors := make([]float64, d)
		for i := range factors {
			factors[i] = 1
		}
		factors[slow] = sev
		enc := sim.EncodeSpeedFactors(factors)
		tp := make(map[string]float64, len(schemes))
		bestReshape, bestReshapeTp := "", 0.0
		for _, scheme := range schemes {
			for _, sched := range schedule.Schedulers() {
				key := engine.ScheduleKey{Scheme: scheme, D: d, N: n}
				if scheme == "chimera" {
					key = engine.ChimeraKey(d, n, 0, 0)
				}
				if sched != "fixed" {
					if sev == 1.0 {
						continue // uniform factors: every policy defers to fixed
					}
					key.Scheduler = sched
					key.Speed = enc
				}
				out := eng.Evaluate(engine.Spec{
					Sched: key, Model: m, MicroBatch: b, W: w,
					AutoRecompute: true, SpeedFactors: enc,
					Device: plat.dev, Network: plat.net,
				})
				res, _ := outcomePoint(out)
				if res == nil {
					if out.Err != nil {
						return nil, out.Err
					}
					if sched != "fixed" {
						// Re-shaped placements may stack too many stage
						// groups' weights for the device — a real data
						// point, not a sweep failure.
						r.Metrics[fmt.Sprintf("%s:%s:%.2f", scheme, sched, sev)] = 0
						continue
					}
					return nil, fmt.Errorf("ablation-heterogeneous: %s D=%d infeasible", scheme, d)
				}
				if sched != "fixed" {
					r.Metrics[fmt.Sprintf("%s:%s:%.2f", scheme, sched, sev)] = res.Throughput
					if res.Throughput > bestReshapeTp {
						bestReshape, bestReshapeTp = scheme+"/"+sched, res.Throughput
					}
					continue
				}
				tp[scheme] = res.Throughput
				if sev == 1.0 {
					base[scheme] = res.Throughput
				}
				r.Metrics[fmt.Sprintf("%s:%.2f", scheme, sev)] = res.Throughput
			}
		}
		line := fmt.Sprintf("straggler ×%.2f:", sev)
		for _, scheme := range schemes {
			retained := tp[scheme] / base[scheme]
			line += fmt.Sprintf("  %s %7.1f seq/s (%.0f%%)", scheme, tp[scheme], 100*retained)
			r.Metrics[fmt.Sprintf("retained:%s:%.2f", scheme, sev)] = retained
		}
		adv := tp["chimera"] / tp["dapple"]
		line += fmt.Sprintf("  chimera/1F1B %.3fx", adv)
		r.Metrics[fmt.Sprintf("advantage:%.2f", sev)] = adv
		if bestReshape != "" {
			line += fmt.Sprintf("  best re-shape %s %.1f", bestReshape, bestReshapeTp)
		}
		r.addf("%s", line)
	}
	r.addf("one ×2 straggler costs every synchronous scheme its slowest worker's pace;")
	r.addf("the ratio row shows how much of Chimera's bubble advantage survives it;")
	r.addf("scheme:scheduler metrics give the list-policy re-shapes at each severity")
	return r, nil
}
