package experiments

import (
	"testing"

	"chimera/internal/engine"
	"chimera/internal/perfmodel"
	"chimera/internal/schedule"
)

// AllocsBenchmark is the allocs section of BENCH_sweep.json: steady-state
// heap traffic on the engine's two hot paths. CI gates ReplayAllocsPerOp
// at exactly 0 — a warm graph replay must recycle its timeline arena — and
// the memo-hit row documents that a warm Evaluate is allocation-free too.
// The miss row sizes what a cold lookup costs (entry, map slot, closure)
// for contrast; it has no gate.
type AllocsBenchmark struct {
	// Replay* time g.ReplayWith with a warm arena pool (the timeline is
	// released back each iteration), on the largest tracked schedule
	// (Chimera D=16 N=64).
	ReplayAllocsPerOp int64   `json:"replay_allocs_per_op"`
	ReplayNsPerOp     float64 `json:"replay_ns_per_op"`
	// MemoHit* time a warm e.Evaluate of a cached spec end to end:
	// canonicalisation, key lookup and outcome return with zero heap
	// traffic.
	MemoHitAllocsPerOp int64   `json:"memo_hit_allocs_per_op"`
	MemoHitNsPerOp     float64 `json:"memo_hit_ns_per_op"`
	// MemoMiss* time the memo machinery's insert path on distinct
	// PlanRequest keys (the plan-cache key type) with a trivial compute
	// function — the bookkeeping cost a cold request pays before any
	// evaluation work.
	MemoMissAllocsPerOp int64   `json:"memo_miss_allocs_per_op"`
	MemoMissNsPerOp     float64 `json:"memo_miss_ns_per_op"`
}

// replayAllocCase builds the schedule + replay config the replay-allocs
// rows measure; shared with BenchmarkReplayAllocs in the schedule package's
// spirit (the config is constructed once, outside the timed loop, exactly
// as the engine's callers hold it).
func replayAllocCase() (*schedule.Graph, schedule.ReplayConfig, error) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 16, N: 64})
	if err != nil {
		return nil, schedule.ReplayConfig{}, err
	}
	g, err := s.Graph()
	if err != nil {
		return nil, schedule.ReplayConfig{}, err
	}
	cm := schedule.UnitPractical
	rc := schedule.ReplayConfig{
		OpCost:   func(_ int, op schedule.Op) int64 { return cm.Cost(op) },
		EdgeCost: func(schedule.Op) int64 { return cm.P2P },
	}
	return g, rc, nil
}

// BenchmarkAllocs measures the allocs section. It uses testing.Benchmark
// so the numbers are the same ones `go test -bench . -benchmem` reports
// from BenchmarkReplayAllocs / BenchmarkMemoKeyAllocs.
func BenchmarkAllocs() (*AllocsBenchmark, error) {
	out := &AllocsBenchmark{}

	g, rc, err := replayAllocCase()
	if err != nil {
		return nil, err
	}
	g.ReplayWith(rc).Release() // warm the arena pool
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.ReplayWith(rc).Release()
		}
	})
	out.ReplayAllocsPerOp = r.AllocsPerOp()
	out.ReplayNsPerOp = float64(r.NsPerOp())

	e := engine.New()
	spec := benchGrid()[0].spec
	if o := e.Evaluate(spec); o.Err != nil {
		return nil, o.Err
	}
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Evaluate(spec)
		}
	})
	out.MemoHitAllocsPerOp = r.AllocsPerOp()
	out.MemoHitNsPerOp = float64(r.NsPerOp())

	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		m := engine.NewMemo[perfmodel.PlanRequest, int]()
		for i := 0; i < b.N; i++ {
			m.Do(perfmodel.PlanRequest{P: i}, func() int { return i })
		}
	})
	out.MemoMissAllocsPerOp = r.AllocsPerOp()
	out.MemoMissNsPerOp = float64(r.NsPerOp())
	return out, nil
}
