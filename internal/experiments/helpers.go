package experiments

import (
	"fmt"

	"chimera/internal/engine"
	"chimera/internal/model"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// eng is the shared evaluation engine: every figure sweep fans its grid out
// over the same worker pool and reuses the same memoized schedules and
// simulator results. Figures that first search a grid for the best point
// and then re-walk it for printing (Figure 10/11 style) hit the cache on
// the second walk instead of simulating everything twice.
var eng = engine.Default()

// platform bundles a device and network (Piz Daint or the V100 cluster).
type platform struct {
	dev sim.Device
	net sim.Network
}

func pizDaint() platform { return platform{sim.PizDaintNode(), sim.AriesNetwork()} }
func v100Cluster() platform {
	return platform{sim.V100Node(), sim.NVLinkIBNetwork()}
}

// runConfig describes one point of a sweep.
type runConfig struct {
	scheme string
	d, b   int
	// f and concat apply to chimera only.
	f      int
	concat schedule.ConcatMode
}

// pointSpec translates one sweep point into an engine spec, performing the
// feasibility checks that need no simulation (divisibility, scheme rules).
// Returns ok=false when the point is structurally infeasible.
func pointSpec(m model.Config, plat platform, p, bhat int, rc runConfig) (engine.Spec, bool) {
	d := rc.d
	if p%d != 0 || m.Layers%d != 0 {
		return engine.Spec{}, false
	}
	w := p / d
	if bhat%(w*rc.b) != 0 {
		return engine.Spec{}, false
	}
	n := bhat / (w * rc.b)
	if n < 1 {
		return engine.Spec{}, false
	}
	// PipeDream-2BW needs gradient accumulation over N ≥ D micro-batches
	// for its two stashed weight versions to be sufficient (§2).
	if rc.scheme == "pipedream-2bw" && n < d {
		return engine.Spec{}, false
	}
	key := engine.ScheduleKey{Scheme: rc.scheme, D: d, N: n}
	if rc.scheme == "chimera" {
		if rc.concat != schedule.Direct && n%d != 0 {
			return engine.Spec{}, false
		}
		key = engine.ChimeraKey(d, n, rc.f, rc.concat)
	}
	return engine.Spec{
		Sched: key, Model: m, MicroBatch: rc.b, W: w,
		AutoRecompute: true,
		Device:        plat.dev, Network: plat.net,
	}, true
}

// evalPoint simulates one (scheme, W, D, B) point for mini-batch size bhat
// on P workers, enabling recomputation automatically when needed. Returns
// nil when the point is infeasible (does not divide, or OOM even with
// recomputation).
func evalPoint(m model.Config, plat platform, p, bhat int, rc runConfig) (*sim.Result, bool) {
	spec, ok := pointSpec(m, plat, p, bhat, rc)
	if !ok {
		return nil, false
	}
	return outcomePoint(eng.Evaluate(spec))
}

// outcomePoint converts an engine outcome to evalPoint's (result, recompute)
// convention: nil for errors (e.g. schedule construction) and for OOM.
func outcomePoint(o engine.Outcome) (*sim.Result, bool) {
	if o.Err != nil || o.Result == nil || o.Result.OOM {
		return nil, false
	}
	return o.Result, o.Recompute
}

// sweepResult is one evaluated grid point: the best-throughput selection
// unit of the per-baseline tuning of §4.2.1.
type sweepResult struct {
	res       *sim.Result
	d, b, w   int
	recompute bool
}

// gridPoint pairs a candidate runConfig with its engine spec; ok reports
// whether the point passed the structural feasibility checks (infeasible
// points are kept only by sweeps that report them, e.g. chimeraVariant).
type gridPoint struct {
	rc   runConfig
	bhat int
	spec engine.Spec
	ok   bool
}

// buildGrid expands (d, b, concat-mode) candidates into feasible specs,
// preserving the nesting order of the serial loops it replaces; selection
// scans outcomes in that order, so the chosen point is identical to the
// serial sweep's.
func buildGrid(m model.Config, plat platform, p int, bhatOf func(d, b int) int, rcs []runConfig) []gridPoint {
	var grid []gridPoint
	for _, rc := range rcs {
		bhat := bhatOf(rc.d, rc.b)
		spec, ok := pointSpec(m, plat, p, bhat, rc)
		if !ok {
			continue
		}
		grid = append(grid, gridPoint{rc: rc, bhat: bhat, spec: spec, ok: true})
	}
	return grid
}

// sweepBest evaluates the grid concurrently and returns the best-throughput
// feasible point, scanning in grid order (first strict improvement wins,
// exactly like the serial loops).
func sweepBest(p int, grid []gridPoint) *sweepResult {
	specs := make([]engine.Spec, len(grid))
	for i, g := range grid {
		specs[i] = g.spec
	}
	outs := eng.Sweep(specs)
	var best *sweepResult
	for i, o := range outs {
		res, rec := outcomePoint(o)
		if res == nil {
			continue
		}
		if best == nil || res.Throughput > best.res.Throughput {
			g := grid[i]
			best = &sweepResult{res: res, d: g.rc.d, b: g.rc.b, w: p / g.rc.d, recompute: rec}
		}
	}
	return best
}

// crossProduct enumerates (d, b) runConfigs for one scheme in the serial
// loops' order: d outer, b inner.
func crossProduct(scheme string, ds, bs []int) []runConfig {
	out := make([]runConfig, 0, len(ds)*len(bs))
	for _, d := range ds {
		for _, b := range bs {
			out = append(out, runConfig{scheme: scheme, d: d, b: b})
		}
	}
	return out
}

// bestPoint sweeps D and power-of-two B for one scheme and returns the best
// throughput point (the per-baseline tuning of §4.2.1).
func bestPoint(m model.Config, plat platform, p, bhat int, scheme string, ds, bs []int) *sweepResult {
	grid := buildGrid(m, plat, p, func(_, _ int) int { return bhat }, crossProduct(scheme, ds, bs))
	return sweepBest(p, grid)
}

// pipeDreamBest handles PipeDream's special rule: its mini-batch size is
// limited by memory (gradient update per micro-batch), so it runs the
// largest feasible B̂ = B·N·W rather than the requested one. N = D keeps
// the pipeline full; B̂ follows from memory.
func pipeDreamBest(m model.Config, plat platform, p int, ds, bs []int) *sweepResult {
	grid := buildGrid(m, plat, p,
		func(d, b int) int { return b * d * (p / d) },
		crossProduct("pipedream", ds, bs))
	return sweepBest(p, grid)
}

func recompStr(r bool) string {
	if r {
		return ", R"
	}
	return ""
}

func fmtPoint(sr *sweepResult) string {
	if sr == nil {
		return "infeasible (OOM at all tested configs)"
	}
	return fmt.Sprintf("W=%-3d D=%-3d B=%-3d%s  throughput=%7.1f seq/s  bubble=%.3f",
		sr.w, sr.d, sr.b, recompStr(sr.recompute), sr.res.Throughput, sr.res.BubbleRatio)
}

// powersOfTwo returns {1, 2, 4, ..., max}.
func powersOfTwo(max int) []int {
	var out []int
	for b := 1; b <= max; b *= 2 {
		out = append(out, b)
	}
	return out
}
