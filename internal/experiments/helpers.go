package experiments

import (
	"fmt"

	"chimera/internal/model"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// platform bundles a device and network (Piz Daint or the V100 cluster).
type platform struct {
	dev sim.Device
	net sim.Network
}

func pizDaint() platform { return platform{sim.PizDaintNode(), sim.AriesNetwork()} }
func v100Cluster() platform {
	return platform{sim.V100Node(), sim.NVLinkIBNetwork()}
}

// runConfig describes one point of a sweep.
type runConfig struct {
	scheme string
	d, b   int
	// f and concat apply to chimera only.
	f      int
	concat schedule.ConcatMode
}

// evalPoint simulates one (scheme, W, D, B) point for mini-batch size bhat
// on P workers, enabling recomputation automatically when needed. Returns
// nil when the point is infeasible (does not divide, or OOM even with
// recomputation).
func evalPoint(m model.Config, plat platform, p, bhat int, rc runConfig) (*sim.Result, bool) {
	d := rc.d
	if p%d != 0 || m.Layers%d != 0 {
		return nil, false
	}
	w := p / d
	if bhat%(w*rc.b) != 0 {
		return nil, false
	}
	n := bhat / (w * rc.b)
	if n < 1 {
		return nil, false
	}
	// PipeDream-2BW needs gradient accumulation over N ≥ D micro-batches
	// for its two stashed weight versions to be sufficient (§2).
	if rc.scheme == "pipedream-2bw" && n < d {
		return nil, false
	}
	var s *schedule.Schedule
	var err error
	if rc.scheme == "chimera" {
		if rc.concat != schedule.Direct && n%d != 0 {
			return nil, false
		}
		s, err = schedule.Chimera(schedule.ChimeraConfig{D: d, N: n, F: rc.f, Concat: rc.concat})
	} else {
		s, err = schedule.ByName(rc.scheme, d, n)
	}
	if err != nil {
		return nil, false
	}
	cfg := sim.Config{
		Model: m, Schedule: s, MicroBatch: rc.b, W: w,
		Device: plat.dev, Network: plat.net,
	}
	res, recompute, err := sim.AutoRun(cfg)
	if err != nil || res.OOM {
		return nil, false
	}
	return res, recompute
}

// bestPoint sweeps D and power-of-two B for one scheme and returns the best
// throughput point (the per-baseline tuning of §4.2.1).
type sweepResult struct {
	res       *sim.Result
	d, b, w   int
	recompute bool
}

func bestPoint(m model.Config, plat platform, p, bhat int, scheme string, ds, bs []int) *sweepResult {
	var best *sweepResult
	for _, d := range ds {
		for _, b := range bs {
			res, rec := evalPoint(m, plat, p, bhat, runConfig{scheme: scheme, d: d, b: b})
			if res == nil {
				continue
			}
			if best == nil || res.Throughput > best.res.Throughput {
				best = &sweepResult{res: res, d: d, b: b, w: p / d, recompute: rec}
			}
		}
	}
	return best
}

// pipeDreamBest handles PipeDream's special rule: its mini-batch size is
// limited by memory (gradient update per micro-batch), so it runs the
// largest feasible B̂ = B·N·W rather than the requested one.
func pipeDreamBest(m model.Config, plat platform, p int, ds, bs []int) *sweepResult {
	var best *sweepResult
	for _, d := range ds {
		if p%d != 0 || m.Layers%d != 0 {
			continue
		}
		w := p / d
		for _, b := range bs {
			// N = D keeps the pipeline full; B̂ follows from memory.
			res, rec := evalPoint(m, plat, p, b*d*w, runConfig{scheme: "pipedream", d: d, b: b})
			if res == nil {
				continue
			}
			if best == nil || res.Throughput > best.res.Throughput {
				best = &sweepResult{res: res, d: d, b: b, w: w, recompute: rec}
			}
		}
	}
	return best
}

func recompStr(r bool) string {
	if r {
		return ", R"
	}
	return ""
}

func fmtPoint(sr *sweepResult) string {
	if sr == nil {
		return "infeasible (OOM at all tested configs)"
	}
	return fmt.Sprintf("W=%-3d D=%-3d B=%-3d%s  throughput=%7.1f seq/s  bubble=%.3f",
		sr.w, sr.d, sr.b, recompStr(sr.recompute), sr.res.Throughput, sr.res.BubbleRatio)
}

// powersOfTwo returns {1, 2, 4, ..., max}.
func powersOfTwo(max int) []int {
	var out []int
	for b := 1; b <= max; b *= 2 {
		out = append(out, b)
	}
	return out
}
