package experiments

import (
	"fmt"

	"chimera/internal/engine"
	"chimera/internal/model"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// SchedulerBenchmark is the placement-policy benchmark, emitted by
// `chimera-bench -json` inside BENCH_sweep.json's schedulers section: a
// scheme × scheduler throughput matrix over straggler severities, simulated
// through the engine's speed-factor seam. CI gates ListBeatsFixed — on the
// severe-straggler case at least one list-scheduled placement must strictly
// beat the best fixed-placement scheme, the property the scheduler zoo
// exists for.
//
// The workload is GPT-2-32 rather than Bert-48 deliberately: re-shaped
// placements stack multiple stage groups' weights on one worker, so the
// policies only pay off where device memory has headroom. Four layers per
// stage leave that headroom; Bert-48's six do not (the ablation shows the
// fixed placement keeping the lead there — both regimes are real).
type SchedulerBenchmark struct {
	// Model, D, W, B, N describe the fixed simulated configuration; the
	// straggler is SlowWorker running Severity× slower than its peers.
	Model      string `json:"model"`
	D          int    `json:"d"`
	W          int    `json:"w"`
	B          int    `json:"b"`
	N          int    `json:"n"`
	SlowWorker int    `json:"slow_worker"`

	Severities []float64             `json:"severities"`
	Points     []SchedulerBenchPoint `json:"points"`

	// SevereSeverity is the gated case; BestFixed and BestList are its
	// per-placement-family winners, Advantage their ratio (gated > 1 in CI
	// via ListBeatsFixed).
	SevereSeverity float64             `json:"severe_severity"`
	BestFixed      SchedulerBenchEntry `json:"best_fixed"`
	BestList       SchedulerBenchEntry `json:"best_list"`
	Advantage      float64             `json:"advantage"`
	ListBeatsFixed bool                `json:"list_beats_fixed"`
}

// SchedulerBenchPoint is one cell of the matrix.
type SchedulerBenchPoint struct {
	Severity   float64 `json:"severity"`
	Scheme     string  `json:"scheme"`
	Scheduler  string  `json:"scheduler"`
	Throughput float64 `json:"throughput"`
	Recompute  bool    `json:"recompute"`
	// OOM marks placements that exceed device memory even with
	// recomputation (Throughput 0) — the memory cost of weight-stacking
	// re-shapes, reported instead of hidden.
	OOM bool `json:"oom,omitempty"`
}

// SchedulerBenchEntry names one placement family's best cell at the severe
// severity.
type SchedulerBenchEntry struct {
	Scheme     string  `json:"scheme"`
	Scheduler  string  `json:"scheduler"`
	Throughput float64 `json:"throughput"`
}

// BenchmarkSchedulers runs the scheme × scheduler matrix over the straggler
// severities and evaluates the severe-case gate.
func BenchmarkSchedulers() (*SchedulerBenchmark, error) {
	m, plat := model.GPT2Small32(), pizDaint()
	const (
		d = 8
		w = 4
		b = 4
		n = 16 // B̂ = W·B·N = 256
	)
	schemes := []string{"chimera", "gpipe", "dapple"}
	severities := []float64{1.1, 1.25, 1.5, 2.0}
	slow := d / 2

	bench := &SchedulerBenchmark{
		Model: m.Name, D: d, W: w, B: b, N: n, SlowWorker: slow,
		Severities:     severities,
		SevereSeverity: severities[len(severities)-1],
	}
	for _, sev := range severities {
		factors := make([]float64, d)
		for i := range factors {
			factors[i] = 1
		}
		factors[slow] = sev
		enc := sim.EncodeSpeedFactors(factors)
		for _, scheme := range schemes {
			for _, sched := range schedule.Schedulers() {
				key := engine.ScheduleKey{Scheme: scheme, D: d, N: n}
				if scheme == "chimera" {
					key = engine.ChimeraKey(d, n, 0, 0)
				}
				if sched != "fixed" {
					key.Scheduler = sched
					key.Speed = enc
				}
				out := eng.Evaluate(engine.Spec{
					Sched: key, Model: m, MicroBatch: b, W: w,
					AutoRecompute: true, SpeedFactors: enc,
					Device: plat.dev, Network: plat.net,
				})
				if out.Err != nil {
					return nil, fmt.Errorf("benchmark-schedulers: %s/%s ×%.2f: %w", scheme, sched, sev, out.Err)
				}
				pt := SchedulerBenchPoint{Severity: sev, Scheme: scheme, Scheduler: sched}
				if res, rec := outcomePoint(out); res != nil {
					pt.Throughput, pt.Recompute = res.Throughput, rec
				} else {
					pt.OOM = true
				}
				bench.Points = append(bench.Points, pt)
				if sev != bench.SevereSeverity || pt.OOM {
					continue
				}
				if sched == "fixed" {
					if pt.Throughput > bench.BestFixed.Throughput {
						bench.BestFixed = SchedulerBenchEntry{scheme, sched, pt.Throughput}
					}
				} else if pt.Throughput > bench.BestList.Throughput {
					bench.BestList = SchedulerBenchEntry{scheme, sched, pt.Throughput}
				}
			}
		}
	}
	if bench.BestFixed.Throughput > 0 {
		bench.Advantage = bench.BestList.Throughput / bench.BestFixed.Throughput
	}
	bench.ListBeatsFixed = bench.BestList.Throughput > bench.BestFixed.Throughput
	return bench, nil
}

// String summarizes the benchmark for chimera-bench's stdout line.
func (b *SchedulerBenchmark) String() string {
	return fmt.Sprintf("scheduler benchmark: %s D=%d, ×%.1f straggler — best fixed %s %.1f, best list %s/%s %.1f seq/s (%.2fx), list beats fixed: %v",
		b.Model, b.D, b.SevereSeverity,
		b.BestFixed.Scheme, b.BestFixed.Throughput,
		b.BestList.Scheme, b.BestList.Scheduler, b.BestList.Throughput,
		b.Advantage, b.ListBeatsFixed)
}
