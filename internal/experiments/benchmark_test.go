package experiments

import "testing"

// TestBenchmarkSweepGrid: the CI-gated properties that don't depend on
// machine speed — grid size, bookkeeping, and serial/parallel agreement.
// (The ≥2× speedup itself is timing-dependent and asserted in CI.)
func TestBenchmarkSweepGrid(t *testing.T) {
	b, err := BenchmarkSweep(2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Configs < 64 {
		t.Fatalf("benchmark grid has %d configurations, acceptance floor is 64", b.Configs)
	}
	if b.Evaluations != b.Configs*b.Passes {
		t.Fatalf("evaluations %d != configs %d × passes %d", b.Evaluations, b.Configs, b.Passes)
	}
	if !b.IdenticalRanking {
		t.Fatal("parallel ranking diverged from the serial reference")
	}
	if b.Serial.ConfigsPerSec <= 0 || b.Parallel.ConfigsPerSec <= 0 {
		t.Fatalf("degenerate throughput: %+v", b)
	}
	if b.Parallel.CacheHitRate <= 0 || b.Parallel.CacheHitRate >= 1 {
		t.Fatalf("implausible cache hit rate %f", b.Parallel.CacheHitRate)
	}
}
