package experiments

import (
	"fmt"

	"chimera/internal/fleet"
	"chimera/internal/model"
)

// elasticMix is the job vocabulary of the elastic ablation and benchmark
// scenarios: capped jobs (real pipelines bound their depth) whose demand
// sums below the cluster, so an allocator that re-plans correctly keeps
// every job at saturation through churn and the incremental-vs-full
// comparison is exact.
func elasticMix(jobs int) []fleet.Job {
	out := make([]fleet.Job, jobs)
	for i := range out {
		j := fleet.Job{Name: fmt.Sprintf("job-%02d", i), MiniBatch: 64, Priority: float64(1 + i%3)}
		if i%2 == 0 {
			j.Model, j.MaxNodes = model.BERT48(), 8
		} else {
			j.Model, j.MaxNodes = model.GPT2Small32(), 4
		}
		out[i] = j
	}
	return out
}

// elasticTrace builds a deterministic churn trace: every job arrives
// staggered, then cycles of fail → join → drain → join roll through the
// cluster every interval seconds (0 = no churn). Failed and drained node
// ids walk distinct ranges so every cycle hits a node some job is using.
func elasticTrace(jobs []fleet.Job, cycles int, interval float64) []fleet.Event {
	var events []fleet.Event
	for i, j := range jobs {
		events = append(events, fleet.Event{At: 10 * float64(i), Kind: fleet.EvArrival, Job: j.Name, Work: 1e9})
	}
	warmup := 10*float64(len(jobs)) + 100
	for c := 0; c < cycles; c++ {
		t := warmup + float64(c)*interval
		events = append(events,
			fleet.Event{At: t, Kind: fleet.EvNodeFail, Node: c},
			fleet.Event{At: t + interval/4, Kind: fleet.EvNodeJoin},
			fleet.Event{At: t + interval/2, Kind: fleet.EvNodeDrain, Node: 20 + c},
			fleet.Event{At: t + 3*interval/4, Kind: fleet.EvNodeJoin},
		)
	}
	return events
}

// AblationElastic sweeps churn rate × migration penalty under both re-plan
// policies: the incremental re-planner must track full re-planning's
// allocations while evaluating a fraction of the jobs, and the migration
// penalty should surface as restart debt that scales with churn.
func AblationElastic() (*Report, error) {
	r := newReport("ablation-elastic", "Elastic fleet: churn × migration penalty, incremental vs full re-plan (24 nodes)")
	plat := pizDaint()
	jobs := elasticMix(4) // caps sum to 24 = demand; the pool carries slack
	cluster := fleet.Cluster{Nodes: 32, Device: plat.dev, Network: plat.net}
	alloc := fleet.NewAllocator(eng)

	churns := []struct {
		name     string
		cycles   int
		interval float64
	}{
		{"calm", 0, 0},
		{"hourly", 4, 3600},
		{"stormy", 12, 600},
	}
	penalties := []float64{0, 10, 60}
	for _, ch := range churns {
		events := elasticTrace(jobs, ch.cycles, ch.interval)
		for _, pen := range penalties {
			var evals [2]int
			var debt [2]float64
			var migrations [2]int
			for i, mode := range []fleet.ReplanMode{fleet.ReplanFull, fleet.ReplanIncremental} {
				res, err := alloc.SimulateElastic(fleet.ElasticScenario{
					Cluster: cluster, Jobs: jobs, Events: events,
					Replan: mode, MigrationPenalty: pen,
				})
				if err != nil {
					return nil, fmt.Errorf("ablation-elastic %s/pen=%g/%s: %w", ch.name, pen, mode, err)
				}
				evals[i], debt[i], migrations[i] = res.JobsEvaluated, res.PenaltySeconds, res.Migrations
			}
			r.addf("%-7s penalty %-4g full: %4d evals %3d migrations %7.1fs debt   incremental: %4d evals %3d migrations %7.1fs debt",
				ch.name, pen, evals[0], migrations[0], debt[0], evals[1], migrations[1], debt[1])
			key := fmt.Sprintf("%s:pen%g", ch.name, pen)
			r.Metrics[key+":evals_full"] = float64(evals[0])
			r.Metrics[key+":evals_incremental"] = float64(evals[1])
			r.Metrics[key+":debt_incremental"] = debt[1]
			r.Metrics[key+":migrations_incremental"] = float64(migrations[1])
		}
	}
	r.addf("incremental re-planning touches only the jobs an event invalidated, so its")
	r.addf("evaluation count stays near the churn volume while full re-planning pays the")
	r.addf("whole fleet on every event; the penalty column is the restart debt churn costs")
	return r, nil
}
