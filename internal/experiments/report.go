// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the index). Each experiment returns a
// Report with the same rows/series the paper plots; `cmd/chimera-bench`
// prints them and the root bench_test.go wraps them as testing.B targets.
//
// Absolute numbers come from the calibrated simulator, not the authors'
// Piz Daint testbed; the shapes — who wins, by what factor, where
// crossovers fall — are the reproduction targets recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Report is the printable result of one experiment.
type Report struct {
	ID    string
	Title string
	Lines []string
	// Metrics exposes headline numbers for benchmarks and tests.
	Metrics map[string]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Metrics: make(map[string]float64)}
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Fprint writes the report in the harness's standard layout.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		fmt.Fprintln(w, l)
	}
	fmt.Fprintln(w)
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	r.Fprint(&b)
	return b.String()
}
