package experiments

import (
	"fmt"

	"chimera/internal/engine"
	"chimera/internal/model"
	"chimera/internal/schedule"
	"chimera/internal/sim"
)

// chimeraVariant simulates one Chimera concatenation variant at fixed
// (D, B) across a mini-batch sweep. The B̂ points are independent, so they
// run concurrently on the engine; reporting walks them in input order.
func chimeraVariant(r *Report, m model.Config, plat platform, p, d, b int, mode schedule.ConcatMode, bhats []int) {
	name := "chimera(" + mode.String() + ")"
	grid := make([]gridPoint, 0, len(bhats))
	for _, bhat := range bhats {
		rc := runConfig{scheme: "chimera", d: d, b: b, concat: mode}
		spec, ok := pointSpec(m, plat, p, bhat, rc)
		grid = append(grid, gridPoint{rc: rc, bhat: bhat, spec: spec, ok: ok})
	}
	var specs []engine.Spec
	idx := make([]int, 0, len(grid))
	for i, g := range grid {
		if g.ok {
			specs = append(specs, g.spec)
			idx = append(idx, i)
		}
	}
	outs := eng.Sweep(specs)
	results := make([]engine.Outcome, len(grid))
	for j, i := range idx {
		results[i] = outs[j]
	}
	for i, g := range grid {
		res, rec := outcomePoint(results[i])
		if !g.ok || res == nil {
			r.addf("  %-28s B̂=%-5d infeasible", name, g.bhat)
			continue
		}
		r.addf("  %-28s B̂=%-5d B=%-3d%-3s %7.1f seq/s", name, g.bhat, b, recompStr(rec), res.Throughput)
		r.Metrics[fmt.Sprintf("%s:%d", name, g.bhat)] = res.Throughput
	}
}

// Figure17 reproduces the large-mini-batch scaling for Bert-48 on 32
// workers: baselines at their tuned configurations and the three Chimera
// variants (direct is expected to win — the intermediate bubbles absorb
// p2p; doubling pays recomputation, halving pays sub-max B).
func Figure17() (*Report, error) {
	r := newReport("figure-17", "Scaling to large mini-batches, Bert-48 on 32 nodes")
	m, plat := model.BERT48(), pizDaint()
	bhats := []int{512, 1024, 2048, 4096}
	r.addf("chimera variants (D=4):")
	chimeraVariant(r, m, plat, 32, 4, 8, schedule.Direct, bhats)
	chimeraVariant(r, m, plat, 32, 4, 8, schedule.ForwardDoubling, bhats)
	chimeraVariant(r, m, plat, 32, 4, 4, schedule.BackwardHalving, bhats)
	r.addf("baselines (best over D ∈ {2,4,8,16}, B powers of two):")
	for _, scheme := range []string{"gpipe", "dapple", "gems", "pipedream-2bw"} {
		for _, bhat := range bhats {
			best := bestPoint(m, plat, 32, bhat, scheme, []int{2, 4, 8, 16}, powersOfTwo(32))
			r.addf("  %-28s B̂=%-5d %s", scheme, bhat, fmtPoint(best))
			if best != nil {
				r.Metrics[fmt.Sprintf("%s:%d", scheme, bhat)] = best.res.Throughput
			}
		}
	}
	pd := pipeDreamBest(m, plat, 32, []int{4, 8}, powersOfTwo(16))
	r.addf("  pipedream (B̂ memory-limited)   %s", fmtPoint(pd))
	return r, nil
}

// Figure18 reproduces the large-mini-batch scaling for GPT-2 on 512
// workers, where recomputation is unavoidable and forward doubling is
// expected to beat direct concatenation.
func Figure18() (*Report, error) {
	r := newReport("figure-18", "Scaling to large mini-batches, GPT-2 on 512 nodes")
	m, plat := model.GPT2(), pizDaint()
	bhats := []int{512, 1024, 1536, 2048}
	r.addf("chimera variants (D=8, B=1):")
	chimeraVariant(r, m, plat, 512, 8, 1, schedule.Direct, bhats)
	chimeraVariant(r, m, plat, 512, 8, 1, schedule.ForwardDoubling, bhats)
	r.addf("baselines (best over D ∈ {8,16}, B=1):")
	for _, scheme := range []string{"gpipe", "dapple", "gems", "pipedream-2bw"} {
		for _, bhat := range bhats {
			best := bestPoint(m, plat, 512, bhat, scheme, []int{8, 16}, []int{1, 2})
			r.addf("  %-28s B̂=%-5d %s", scheme, bhat, fmtPoint(best))
			if best != nil {
				r.Metrics[fmt.Sprintf("%s:%d", scheme, bhat)] = best.res.Throughput
			}
		}
	}
	return r, nil
}

// Figure19 reproduces the f-sweep: Chimera with 1–16 pipelines for the
// 32-layer GPT-2 with B̂=64 on 64 workers, at (W=2, D=32) and (W=4, D=16);
// "1 pipe" is 1F1B with flushes.
func Figure19() (*Report, error) {
	r := newReport("figure-19", "Chimera with more than two pipelines (GPT-2 32L, B̂=64, 64 nodes)")
	m, plat := model.GPT2Small32(), pizDaint()
	for _, cfg := range []struct{ w, d int }{{2, 32}, {4, 16}} {
		n := 64 / cfg.w // B=1
		r.addf("W=%d, D=%d (N=%d, B=1):", cfg.w, cfg.d, n)
		// Single pipeline baseline: 1F1B with flush.
		if s, err := schedule.OneF1B(cfg.d, n); err == nil {
			res, err := sim.Run(sim.Config{Model: m, Schedule: s, MicroBatch: 1, W: cfg.w,
				Device: plat.dev, Network: plat.net})
			if err == nil && !res.OOM {
				r.addf("  1 pipe  (1F1B)   %7.1f seq/s  bubble=%.3f", res.Throughput, res.BubbleRatio)
				r.Metrics[fmt.Sprintf("d%d:pipes=1", cfg.d)] = res.Throughput
			}
		}
		for f := 1; 2*f <= cfg.d; f *= 2 {
			if (cfg.d/2)%f != 0 {
				continue
			}
			s, err := schedule.Chimera(schedule.ChimeraConfig{D: cfg.d, N: n, F: f, Concat: schedule.Direct})
			if err != nil {
				continue
			}
			res, err := sim.Run(sim.Config{Model: m, Schedule: s, MicroBatch: 1, W: cfg.w,
				Device: plat.dev, Network: plat.net})
			if err != nil || res.OOM {
				r.addf("  %2d pipes: infeasible", 2*f)
				continue
			}
			r.addf("  %2d pipes         %7.1f seq/s  bubble=%.3f", 2*f, res.Throughput, res.BubbleRatio)
			r.Metrics[fmt.Sprintf("d%d:pipes=%d", cfg.d, 2*f)] = res.Throughput
		}
	}
	r.addf("paper: 4 pipes best at D=32; 2 pipes best at D=16 (allreduce overhead vs bubbles)")
	return r, nil
}
