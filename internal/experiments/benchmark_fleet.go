package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"chimera/internal/engine"
	"chimera/internal/fleet"
	"chimera/internal/model"
	"chimera/internal/serve"
)

// FleetBenchmark is the machine-readable fleet-allocation benchmark,
// emitted by `chimera-bench -json` as BENCH_fleet.json (and embedded in
// BENCH_sweep.json's fleet section). CI gates Advantage > 1 — the
// planner-guided allocator must strictly beat equal-split on the benchmark
// mix — and Deterministic, which asserts allocations and trace replays are
// byte-identical across engine pool sizes.
type FleetBenchmark struct {
	// Nodes and Platform describe the benchmark cluster; Jobs the mix.
	Nodes    int             `json:"nodes"`
	Platform string          `json:"platform"`
	Jobs     []FleetBenchJob `json:"jobs"`

	EqualSplit    FleetBenchSide `json:"equal_split"`
	PlannerGuided FleetBenchSide `json:"planner_guided"`
	// Advantage is planner-guided over equal-split weighted throughput —
	// the headline number, gated > 1 in CI.
	Advantage float64 `json:"advantage"`

	// Deterministic reports that a serial engine, a full pool, and a
	// repeat run all produced byte-identical allocation and simulation
	// encodings.
	Deterministic bool `json:"deterministic"`

	// Sim replays the benchmark arrival trace under both policies.
	Sim FleetBenchSim `json:"sim"`

	// PlanCacheHitRate is the fleet allocator's plan-memo hit rate over
	// the whole benchmark — how much of the greedy search the memoization
	// absorbs.
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`

	// Elastic is the churn benchmark: incremental vs full re-planning over
	// one event trace. CI gates Speedup ≥ 2 with EqualFinal and
	// Deterministic true.
	Elastic *FleetBenchElastic `json:"elastic"`
}

// FleetBenchElastic compares the incremental re-planner against full
// re-planning on a churn-heavy trace with warm plan memos — the
// steady-state cost of keeping a fleet allocated while the cluster churns.
type FleetBenchElastic struct {
	// Nodes, Jobs and Events describe the scenario; churn counters break
	// the events down.
	Nodes  int `json:"nodes"`
	Jobs   int `json:"jobs"`
	Events int `json:"events"`
	Fails  int `json:"fails"`
	Drains int `json:"drains"`
	Joins  int `json:"joins"`

	// FullSeconds and IncrementalSeconds are min-of-3 wall times for one
	// whole trace replay; Speedup is their ratio (gated ≥ 2 in CI).
	FullSeconds        float64 `json:"full_seconds"`
	IncrementalSeconds float64 `json:"incremental_seconds"`
	Speedup            float64 `json:"speedup"`

	// FullJobsEvaluated and IncrementalJobsEvaluated count the re-plan work
	// (job evaluations) each policy performed — the machine-independent
	// explanation of the speedup.
	FullJobsEvaluated        int `json:"full_jobs_evaluated"`
	IncrementalJobsEvaluated int `json:"incremental_jobs_evaluated"`

	// EqualFinal asserts both policies reached the identical final
	// allocation (per-job node counts, plans, and throughputs).
	EqualFinal bool `json:"equal_final"`
	// Deterministic asserts the incremental replay encodes byte-identically
	// on a serial engine and a full pool.
	Deterministic bool `json:"deterministic"`
}

// FleetBenchJob describes one job of the benchmark mix.
type FleetBenchJob struct {
	Name      string  `json:"name"`
	Model     string  `json:"model"`
	MiniBatch int     `json:"mini_batch"`
	Priority  float64 `json:"priority"`
}

// FleetBenchSide is one policy's result on the static benchmark mix.
type FleetBenchSide struct {
	WeightedThroughput float64 `json:"weighted_throughput"`
	NodesAllocated     int     `json:"nodes_allocated"`
	NodesUsed          int     `json:"nodes_used"`
	Seconds            float64 `json:"seconds"`
}

// FleetBenchSim is the trace-replay comparison.
type FleetBenchSim struct {
	Arrivals           int     `json:"arrivals"`
	MakespanEqual      float64 `json:"makespan_equal"`
	MakespanGuided     float64 `json:"makespan_guided"`
	UtilizationEqual   float64 `json:"utilization_equal"`
	UtilizationGuided  float64 `json:"utilization_guided"`
	MeanWaitEqual      float64 `json:"mean_wait_equal"`
	MeanWaitGuided     float64 `json:"mean_wait_guided"`
	ReallocationsTotal int     `json:"reallocations_total"`
}

// fleetBenchJobs is the benchmark mix: skewed priorities and sizes, where
// priority-blind equal splitting measurably wastes weighted throughput.
func fleetBenchJobs() []fleet.Job {
	return []fleet.Job{
		{Name: "bert-large", Model: model.BERT48(), MiniBatch: 512, Priority: 4},
		{Name: "bert-small", Model: model.BERT48(), MiniBatch: 64, Priority: 1},
		{Name: "gpt2-mid", Model: model.GPT2Small32(), MiniBatch: 64, Priority: 1},
	}
}

func fleetBenchTrace() []fleet.Arrival {
	return []fleet.Arrival{
		{At: 0, Job: "bert-large", Work: 100000},
		{At: 0, Job: "gpt2-mid", Work: 20000},
		{At: 30, Job: "bert-small", Work: 30000},
		{At: 60, Job: "gpt2-mid", Work: 10000},
	}
}

// BenchmarkFleet runs the fleet-allocation benchmark: both policies on the
// benchmark mix (timed), the trace replay, and the cross-pool determinism
// check.
func BenchmarkFleet() (*FleetBenchmark, error) {
	const nodes = 32
	plat := pizDaint()
	cluster := fleet.Cluster{Nodes: nodes, Device: plat.dev, Network: plat.net}
	jobs := fleetBenchJobs()

	b := &FleetBenchmark{Nodes: nodes, Platform: "pizdaint"}
	for _, j := range jobs {
		p := j.Priority
		if p == 0 {
			p = 1
		}
		b.Jobs = append(b.Jobs, FleetBenchJob{Name: j.Name, Model: j.Model.Name, MiniBatch: j.MiniBatch, Priority: p})
	}

	// Timed policy runs on a fresh allocator (cold plan memo, shared
	// engine pool underneath).
	alloc := fleet.NewAllocator(engine.New())
	sides := make(map[fleet.Policy]*fleet.Allocation, 2)
	for _, policy := range []fleet.Policy{fleet.EqualSplit, fleet.PlannerGuided} {
		start := time.Now()
		al, err := alloc.Allocate(fleet.Request{Cluster: cluster, Jobs: jobs, Policy: policy})
		if err != nil {
			return nil, err
		}
		side := FleetBenchSide{
			WeightedThroughput: al.WeightedThroughput,
			NodesAllocated:     al.NodesAllocated, NodesUsed: al.NodesUsed,
			Seconds: time.Since(start).Seconds(),
		}
		if policy == fleet.EqualSplit {
			b.EqualSplit = side
		} else {
			b.PlannerGuided = side
		}
		sides[policy] = al
	}
	b.Advantage = b.PlannerGuided.WeightedThroughput / b.EqualSplit.WeightedThroughput

	// Trace replay under both policies on the same allocator.
	sc := fleet.Scenario{Cluster: cluster, Jobs: jobs, Trace: fleetBenchTrace()}
	b.Sim.Arrivals = len(sc.Trace)
	for _, policy := range []fleet.Policy{fleet.EqualSplit, fleet.PlannerGuided} {
		sc.Policy = policy
		res, err := alloc.Simulate(sc)
		if err != nil {
			return nil, err
		}
		if policy == fleet.EqualSplit {
			b.Sim.MakespanEqual, b.Sim.UtilizationEqual, b.Sim.MeanWaitEqual = res.Makespan, res.Utilization, res.MeanWait
		} else {
			b.Sim.MakespanGuided, b.Sim.UtilizationGuided, b.Sim.MeanWaitGuided = res.Makespan, res.Utilization, res.MeanWait
		}
		b.Sim.ReallocationsTotal += res.Reallocations
	}
	hits, misses := alloc.PlanStats()
	if total := hits + misses; total > 0 {
		b.PlanCacheHitRate = float64(hits) / float64(total)
	}

	// Determinism gate: a serial engine, a fresh full pool, and a repeat
	// on the original allocator must encode byte-identically — both the
	// allocation (through the canonical serve codec) and the replay.
	det, err := fleetDeterministic(cluster, jobs, sides[fleet.PlannerGuided], sc)
	if err != nil {
		return nil, err
	}
	b.Deterministic = det

	elastic, err := benchmarkElastic()
	if err != nil {
		return nil, err
	}
	b.Elastic = elastic
	return b, nil
}

// elasticBenchScenario is the churn benchmark: twelve capped jobs (demand
// 72 nodes) on an 80-node cluster, with eight fail → join → drain → join
// cycles rolling through while everything is resident. Demand stays below
// the pool at every instant, so both re-plan policies must hold every job
// at its saturation share and the final-allocation comparison is exact.
func elasticBenchScenario(mode fleet.ReplanMode) fleet.ElasticScenario {
	plat := pizDaint()
	jobs := elasticMix(12)
	return fleet.ElasticScenario{
		Cluster:          fleet.Cluster{Nodes: 80, Device: plat.dev, Network: plat.net},
		Jobs:             jobs,
		Events:           elasticTrace(jobs, 8, 300),
		Replan:           mode,
		MigrationPenalty: 10,
	}
}

// benchmarkElastic times incremental vs full re-planning over the churn
// trace on warm plan memos (the steady-state regime of a long-running
// allocator), checks the final allocations agree, and re-runs the
// incremental replay across engine pool sizes for the determinism gate.
func benchmarkElastic() (*FleetBenchElastic, error) {
	alloc := fleet.NewAllocator(engine.New())
	run := func(mode fleet.ReplanMode) (*fleet.ElasticResult, float64, error) {
		sc := elasticBenchScenario(mode)
		// Warm pass: populate the plan memo so the timed passes measure
		// re-plan machinery, not first-touch planning.
		res, err := alloc.SimulateElastic(sc)
		if err != nil {
			return nil, 0, err
		}
		best := math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			if _, err := alloc.SimulateElastic(sc); err != nil {
				return nil, 0, err
			}
			if s := time.Since(start).Seconds(); s < best {
				best = s
			}
		}
		return res, best, nil
	}
	full, fullSec, err := run(fleet.ReplanFull)
	if err != nil {
		return nil, err
	}
	inc, incSec, err := run(fleet.ReplanIncremental)
	if err != nil {
		return nil, err
	}
	e := &FleetBenchElastic{
		Nodes: full.InitialNodes, Jobs: len(elasticMix(12)), Events: full.Events,
		Fails: full.Fails, Drains: full.Drains, Joins: full.Joins,
		FullSeconds: fullSec, IncrementalSeconds: incSec,
		FullJobsEvaluated:        full.JobsEvaluated,
		IncrementalJobsEvaluated: inc.JobsEvaluated,
	}
	if incSec > 0 {
		e.Speedup = fullSec / incSec
	}
	rawFull, err := json.Marshal(serve.NewFleetElasticResponse(full).Final)
	if err != nil {
		return nil, err
	}
	rawInc, err := json.Marshal(serve.NewFleetElasticResponse(inc).Final)
	if err != nil {
		return nil, err
	}
	e.EqualFinal = bytes.Equal(rawFull, rawInc)

	// Cross-pool determinism of the incremental replay encoding.
	var want []byte
	e.Deterministic = true
	for i, eng := range []*engine.Engine{engine.New(engine.Workers(1)), engine.New()} {
		res, err := fleet.NewAllocator(eng).SimulateElastic(elasticBenchScenario(fleet.ReplanIncremental))
		if err != nil {
			return nil, err
		}
		raw, err := json.Marshal(serve.NewFleetElasticResponse(res))
		if err != nil {
			return nil, err
		}
		if i == 0 {
			want = raw
		} else if !bytes.Equal(raw, want) {
			e.Deterministic = false
		}
	}
	return e, nil
}

// fleetDeterministic re-runs the planner-guided allocation and the trace
// replay on independent engines (serial and pooled) and compares canonical
// encodings.
func fleetDeterministic(cluster fleet.Cluster, jobs []fleet.Job, want *fleet.Allocation, sc fleet.Scenario) (bool, error) {
	wantAl, err := json.Marshal(serve.NewFleetPlanResponse(want))
	if err != nil {
		return false, err
	}
	var wantSim []byte
	for i, e := range []*engine.Engine{engine.New(engine.Workers(1)), engine.New()} {
		a := fleet.NewAllocator(e)
		al, err := a.Allocate(fleet.Request{Cluster: cluster, Jobs: jobs, Policy: fleet.PlannerGuided})
		if err != nil {
			return false, err
		}
		raw, err := json.Marshal(serve.NewFleetPlanResponse(al))
		if err != nil {
			return false, err
		}
		if !bytes.Equal(raw, wantAl) {
			return false, nil
		}
		res, err := a.Simulate(sc)
		if err != nil {
			return false, err
		}
		rawSim, err := json.Marshal(serve.NewFleetSimResponse(res))
		if err != nil {
			return false, err
		}
		if i == 0 {
			wantSim = rawSim
		} else if !bytes.Equal(rawSim, wantSim) {
			return false, nil
		}
	}
	return true, nil
}

// String summarizes the benchmark for chimera-bench's stdout line.
func (b *FleetBenchmark) String() string {
	return fmt.Sprintf("fleet benchmark: %d nodes, %d jobs — equal-split %.1f, planner-guided %.1f weighted seq/s (%.2fx), deterministic: %v",
		b.Nodes, len(b.Jobs), b.EqualSplit.WeightedThroughput, b.PlannerGuided.WeightedThroughput, b.Advantage, b.Deterministic)
}
