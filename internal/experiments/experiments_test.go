package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestTable2MatchesPaper: measured values track the closed forms exactly
// for the exactly-derivable schemes.
func TestTable2MatchesPaper(t *testing.T) {
	r, err := Table2(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Metrics["bubble:chimera"]; got != 0.25 {
		t.Errorf("chimera bubble %v want 0.25", got)
	}
	if got := r.Metrics["bubble:dapple"]; got != 3.0/7.0 {
		t.Errorf("dapple bubble %v want 3/7", got)
	}
}

// TestTable3BubblesShrinkWithF: more pipelines, fewer bubbles (Table 3).
func TestTable3BubblesShrinkWithF(t *testing.T) {
	r, err := Table3(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.Metrics["bubble:f=1"] > r.Metrics["bubble:f=2"] &&
		r.Metrics["bubble:f=2"] > r.Metrics["bubble:f=4"]) {
		t.Errorf("bubbles not monotone in f: %v", r.Metrics)
	}
}

// TestFigure1Shapes pins the headline comparison's qualitative shape:
// Chimera beats every baseline on GPT-2 at 2,048 workers, with speedups in
// the paper's ballpark.
func TestFigure1Shapes(t *testing.T) {
	r, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"pipedream", "pipedream-2bw", "gpipe", "gems", "dapple"} {
		s := r.Metrics["speedup:"+scheme]
		if s <= 1.0 {
			t.Errorf("chimera should beat %s, speedup %.2f", scheme, s)
		}
		if s > 4 {
			t.Errorf("speedup over %s implausibly high: %.2f", scheme, s)
		}
	}
	// Paper factors: dapple 1.38x, gpipe 1.42x, gems 2.34x — shapes within
	// a loose band.
	if s := r.Metrics["speedup:dapple"]; s < 1.1 || s > 1.8 {
		t.Errorf("dapple speedup %.2f outside paper band", s)
	}
	if s := r.Metrics["speedup:gems"]; s < 1.8 {
		t.Errorf("gems speedup %.2f should be the largest synchronous gap", s)
	}
}

// TestFigure2ChimeraShortest: among synchronous schemes at D=N=4, Chimera
// has the shortest makespan.
func TestFigure2ChimeraShortest(t *testing.T) {
	r, err := Figure2(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ch := r.Metrics["makespan:chimera"]
	for _, s := range []string{"gpipe", "dapple", "gems"} {
		if ch >= r.Metrics["makespan:"+s] {
			t.Errorf("chimera makespan %v not below %s %v", ch, s, r.Metrics["makespan:"+s])
		}
	}
}

// TestFigure6CriticalPath pins the Cf=6, Cb=10 example.
func TestFigure6CriticalPath(t *testing.T) {
	r, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["cf"] != 6 || r.Metrics["cb"] != 10 {
		t.Errorf("critical path (%v, %v), paper says (6, 10)", r.Metrics["cf"], r.Metrics["cb"])
	}
}

// TestFigure7DoublingWinsUnderRecompute: the §3.5 crossover.
func TestFigure7DoublingWinsUnderRecompute(t *testing.T) {
	r, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["recompute-makespan:forward-doubling"] >= r.Metrics["recompute-makespan:direct"] {
		t.Errorf("doubling should win under recompute: %v", r.Metrics)
	}
	if r.Metrics["makespan:direct"] > r.Metrics["makespan:forward-doubling"] {
		t.Errorf("direct should win without recompute: %v", r.Metrics)
	}
}

// TestFigure8ConflictFree: the four-pipeline overlay has no conflicts.
func TestFigure8ConflictFree(t *testing.T) {
	r, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["conflicts"] != 0 {
		t.Errorf("overlay conflicts: %v", r.Metrics["conflicts"])
	}
}

// TestFigure9Shapes: GPipe OOMs in every panel; Chimera's memory spread is
// tighter than DAPPLE's in every panel.
func TestFigure9Shapes(t *testing.T) {
	r, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	var sawOOMLine bool
	for _, l := range r.Lines {
		if strings.Contains(l, "gpipe") && strings.Contains(l, "OOM") {
			sawOOMLine = true
		}
	}
	if !sawOOMLine {
		t.Error("gpipe should OOM in the Figure 9 configurations")
	}
	for _, m := range []string{"Bert-48", "GPT-2-32"} {
		chSpread := r.Metrics[m+":chimera:max"] / r.Metrics[m+":chimera:min"]
		daSpread := r.Metrics[m+":dapple:max"] / r.Metrics[m+":dapple:min"]
		if chSpread >= daSpread {
			t.Errorf("%s: chimera spread %.2f not tighter than dapple %.2f", m, chSpread, daSpread)
		}
	}
}

// TestFigure12OptWins: eager-sync-opt ≥ eager-sync at every node count.
func TestFigure12OptWins(t *testing.T) {
	r, err := Figure12()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"16", "32", "64"} {
		if v := r.Metrics["opt-over-eager:"+p]; v < 1.0 {
			t.Errorf("P=%s: eager-opt/eager = %.3f < 1", p, v)
		}
	}
}

// TestFigure14ChimeraBeatsSyncBaselines: weak scaling, Bert-48.
func TestFigure14ChimeraBeatsSyncBaselines(t *testing.T) {
	r, err := Figure14()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"16", "32", "64"} {
		ch := r.Metrics["chimera:"+p]
		for _, s := range []string{"gpipe", "dapple", "gems"} {
			if ch <= r.Metrics[s+":"+p] {
				t.Errorf("P=%s: chimera %.1f not above %s %.1f", p, ch, s, r.Metrics[s+":"+p])
			}
		}
	}
}

// TestFigure15ShapesAndEfficiency: GPT-2 weak scaling — Chimera on top of
// every baseline including the asynchronous ones, high parallel efficiency.
func TestFigure15ShapesAndEfficiency(t *testing.T) {
	r, err := Figure15()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"512", "1024", "2048"} {
		ch := r.Metrics["chimera:"+p]
		for _, s := range []string{"gpipe", "dapple", "gems", "pipedream", "pipedream-2bw"} {
			if ch <= r.Metrics[s+":"+p] {
				t.Errorf("P=%s: chimera %.1f not above %s %.1f", p, ch, s, r.Metrics[s+":"+p])
			}
		}
	}
	if eff := r.Metrics["parallel-efficiency"]; eff < 0.85 || eff > 1.02 {
		t.Errorf("parallel efficiency %.3f outside plausible band (paper: 0.914)", eff)
	}
}

// TestFigure17DirectBest: Bert-48 large mini-batches — direct beats
// doubling and halving at every B̂ (the paper's Fig. 17 finding).
func TestFigure17DirectBest(t *testing.T) {
	r, err := Figure17()
	if err != nil {
		t.Fatal(err)
	}
	for _, bhat := range []string{"1024", "2048", "4096"} {
		dir := r.Metrics["chimera(direct):"+bhat]
		if dir <= r.Metrics["chimera(forward-doubling):"+bhat] {
			t.Errorf("B̂=%s: direct %.1f not above doubling", bhat, dir)
		}
		if dir <= r.Metrics["chimera(backward-halving):"+bhat] {
			t.Errorf("B̂=%s: direct %.1f not above halving", bhat, dir)
		}
	}
}

// TestFigure18DoublingBest: GPT-2 large mini-batches — forward doubling
// beats direct when recomputation is unavoidable (Fig. 18).
func TestFigure18DoublingBest(t *testing.T) {
	r, err := Figure18()
	if err != nil {
		t.Fatal(err)
	}
	for _, bhat := range []string{"1024", "1536", "2048"} {
		if r.Metrics["chimera(forward-doubling):"+bhat] <= r.Metrics["chimera(direct):"+bhat] {
			t.Errorf("B̂=%s: doubling should beat direct under recompute", bhat)
		}
	}
}

// TestFigure19MoreAtDeeperPipes: at D=32 more than two pipelines helps; at
// D=16 the advantage shrinks or reverses (the paper's trade-off).
func TestFigure19MoreAtDeeperPipes(t *testing.T) {
	r, err := Figure19()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["d32:pipes=4"] <= r.Metrics["d32:pipes=1"] {
		t.Errorf("D=32: 4 pipes (%.1f) should beat 1 pipe (%.1f)",
			r.Metrics["d32:pipes=4"], r.Metrics["d32:pipes=1"])
	}
	if r.Metrics["d32:pipes=2"] <= r.Metrics["d32:pipes=1"] {
		t.Error("D=32: 2 pipes should beat 1 pipe")
	}
	// At coarser stages the gain from f>2 must be smaller than at D=32.
	gain32 := r.Metrics["d32:pipes=4"] / r.Metrics["d32:pipes=2"]
	gain16 := r.Metrics["d16:pipes=4"] / r.Metrics["d16:pipes=2"]
	if gain16 > gain32 {
		t.Errorf("f>1 gain should shrink with coarser stages: D16 %.3f vs D32 %.3f", gain16, gain32)
	}
}

// TestModelAccuracyWithinPaperBound: Eq. 1 within 10%.
func TestModelAccuracyWithinPaperBound(t *testing.T) {
	r, err := ModelAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["worst-error"] > 0.10 {
		t.Errorf("worst model error %.1f%% above the paper's 10%%", r.Metrics["worst-error"]*100)
	}
}

// TestAblationGreedyBNearOptimal: the greedy micro-batch is within 10% of
// the swept optimum (§3.4's justification for the reduced tuning space).
func TestAblationGreedyBNearOptimal(t *testing.T) {
	r, err := AblationGreedyB()
	if err != nil {
		t.Fatal(err)
	}
	greedy := r.Metrics["b="+strconv.Itoa(int(r.Metrics["greedy"]))]
	best := r.Metrics["b="+strconv.Itoa(int(r.Metrics["optimum"]))]
	if greedy < 0.9*best {
		t.Errorf("greedy B throughput %.1f more than 10%% below optimum %.1f", greedy, best)
	}
}

// TestAblationAllreduceRabenseifnerWins at scale.
func TestAblationAllreduceRabenseifnerWins(t *testing.T) {
	r, err := AblationAllreduce()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["rabenseifner:256"] > r.Metrics["ring:256"] {
		t.Errorf("rabenseifner (%v) should not lose to ring (%v) at W=256",
			r.Metrics["rabenseifner:256"], r.Metrics["ring:256"])
	}
}

// TestTrainingEquivalenceTight: the real-runtime demo stays numerically
// tight and the loss decreases.
func TestTrainingEquivalenceTight(t *testing.T) {
	r, err := TrainingEquivalence(8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["worst-loss-gap"] > 1e-4 {
		t.Errorf("loss gap %v too large", r.Metrics["worst-loss-gap"])
	}
	if r.Metrics["worst-weight-gap"] > 1e-4 {
		t.Errorf("weight gap %v too large", r.Metrics["worst-weight-gap"])
	}
	if r.Metrics["last-loss"] >= r.Metrics["first-loss"] {
		t.Errorf("loss did not decrease: %v → %v", r.Metrics["first-loss"], r.Metrics["last-loss"])
	}
}

// TestAllExperimentsComplete: every harness runs to completion and
// produces output (the cmd/chimera-bench path).
func TestAllExperimentsComplete(t *testing.T) {
	for i, fn := range All(2) {
		rep, err := fn()
		if err != nil {
			t.Fatalf("experiment %d failed: %v", i, err)
		}
		if rep.ID == "" || len(rep.Lines) == 0 {
			t.Fatalf("experiment %d produced empty report", i)
		}
	}
}

// TestConvergenceComparison: Chimera must track sequential SGD to float
// round-off while PipeDream (stale weights) measurably deviates — yet both
// make progress.
func TestConvergenceComparison(t *testing.T) {
	r, err := ConvergenceComparison(10)
	if err != nil {
		t.Fatal(err)
	}
	if gap := r.Metrics["chimera-sgd-gap"]; gap > 1e-4 {
		t.Errorf("chimera/SGD gap %v too large", gap)
	}
	pd := r.Metrics["pipedream-final"] - r.Metrics["sgd-final"]
	if pd < 0 {
		pd = -pd
	}
	if pd < 1e-6 {
		t.Error("pipedream unexpectedly identical to SGD — staleness not exercised")
	}
	if r.Metrics["pipedream-final"] > 4.0 {
		t.Errorf("pipedream failed to make progress: %v", r.Metrics["pipedream-final"])
	}
}
