package optim

import (
	"math"
	"testing"

	"chimera/internal/nn"
)

func paramWith(vals, grads []float32) *nn.Param {
	p := nn.NewParam("p", len(vals))
	copy(p.Value.Data, vals)
	copy(p.Grad.Data, grads)
	return p
}

func TestSGDStep(t *testing.T) {
	p := paramWith([]float32{1, 2}, []float32{0.5, -0.5})
	(&SGD{LR: 0.1}).Step([]*nn.Param{p})
	if math.Abs(float64(p.Value.Data[0])-0.95) > 1e-7 || math.Abs(float64(p.Value.Data[1])-2.05) > 1e-7 {
		t.Fatalf("sgd step wrong: %v", p.Value.Data)
	}
}

func TestMomentumAccumulates(t *testing.T) {
	p := paramWith([]float32{0}, []float32{1})
	o := &Momentum{LR: 1, Mu: 0.5}
	o.Step([]*nn.Param{p}) // v=1, w=-1
	o.Step([]*nn.Param{p}) // v=1.5, w=-2.5
	if math.Abs(float64(p.Value.Data[0])+2.5) > 1e-6 {
		t.Fatalf("momentum state wrong: %v", p.Value.Data[0])
	}
}

func TestMomentumDeterministicAcrossInstances(t *testing.T) {
	mk := func() *nn.Param { return paramWith([]float32{1, -1, 2}, nil) }
	a, b := mk(), mk()
	oa, ob := &Momentum{LR: 0.1, Mu: 0.9}, &Momentum{LR: 0.1, Mu: 0.9}
	for i := 0; i < 5; i++ {
		g := []float32{float32(i), -float32(i), 0.5}
		copy(a.Grad.Data, g)
		copy(b.Grad.Data, g)
		oa.Step([]*nn.Param{a})
		ob.Step([]*nn.Param{b})
	}
	for i := range a.Value.Data {
		if a.Value.Data[i] != b.Value.Data[i] {
			t.Fatal("momentum not deterministic — replica consistency would break")
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w−3)²: grad = 2(w−3).
	p := paramWith([]float32{0}, nil)
	o := NewAdam(0.3)
	for i := 0; i < 300; i++ {
		p.Grad.Data[0] = 2 * (p.Value.Data[0] - 3)
		o.Step([]*nn.Param{p})
	}
	if math.Abs(float64(p.Value.Data[0])-3) > 0.05 {
		t.Fatalf("adam did not converge: %v", p.Value.Data[0])
	}
}

func TestAdamBiasCorrectionFirstStep(t *testing.T) {
	p := paramWith([]float32{0}, []float32{1})
	o := NewAdam(0.1)
	o.Step([]*nn.Param{p})
	// First Adam step moves by ≈ lr regardless of gradient scale.
	if math.Abs(float64(p.Value.Data[0])+0.1) > 1e-3 {
		t.Fatalf("first adam step %v, want ≈ -0.1", p.Value.Data[0])
	}
}

func TestOptimizersHandleMultipleParams(t *testing.T) {
	ps := []*nn.Param{paramWith([]float32{1}, []float32{1}), paramWith([]float32{2, 3}, []float32{1, 1})}
	for _, o := range []Optimizer{&SGD{LR: 0.1}, &Momentum{LR: 0.1, Mu: 0.9}, NewAdam(0.1)} {
		o.Step(ps)
	}
	if ps[0].Value.Data[0] >= 1 || ps[1].Value.Data[1] >= 3 {
		t.Fatal("updates not applied to all params")
	}
}
