// Package optim implements the first-order update rules used by the
// training runtime: plain SGD, SGD with momentum (the paper's setting), and
// Adam. Optimizers are deterministic: replicas that apply the same
// synchronized gradients stay bitwise identical, which the pipeline
// executor's weight-consistency tests rely on.
package optim

import (
	"math"

	"chimera/internal/nn"
)

// Optimizer applies an update rule to a parameter set.
type Optimizer interface {
	// Step applies one update using the current Grad of every parameter.
	Step(params []*nn.Param)
}

// SGD is plain stochastic gradient descent: w ← w − lr·g.
type SGD struct {
	LR float64
}

// Step applies the SGD update.
func (o *SGD) Step(params []*nn.Param) {
	lr := float32(o.LR)
	for _, p := range params {
		for i, g := range p.Grad.Data {
			p.Value.Data[i] -= lr * g
		}
	}
}

// Momentum is SGD with classical momentum: v ← μv + g; w ← w − lr·v.
type Momentum struct {
	LR, Mu float64

	velocity map[*nn.Param][]float32
}

// Step applies the momentum update.
func (o *Momentum) Step(params []*nn.Param) {
	if o.velocity == nil {
		o.velocity = make(map[*nn.Param][]float32)
	}
	lr, mu := float32(o.LR), float32(o.Mu)
	for _, p := range params {
		v, ok := o.velocity[p]
		if !ok {
			v = make([]float32, p.Grad.Len())
			o.velocity[p] = v
		}
		for i, g := range p.Grad.Data {
			v[i] = mu*v[i] + g
			p.Value.Data[i] -= lr * v[i]
		}
	}
}

// Adam implements the Adam update with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	step int
	m, v map[*nn.Param][]float32
}

// NewAdam returns Adam with conventional defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies the Adam update.
func (o *Adam) Step(params []*nn.Param) {
	if o.m == nil {
		o.m = make(map[*nn.Param][]float32)
		o.v = make(map[*nn.Param][]float32)
	}
	o.step++
	b1, b2 := o.Beta1, o.Beta2
	c1 := 1 / (1 - math.Pow(b1, float64(o.step)))
	c2 := 1 / (1 - math.Pow(b2, float64(o.step)))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float32, p.Grad.Len())
			v := make([]float32, p.Grad.Len())
			o.m[p], o.v[p] = m, v
		}
		v := o.v[p]
		for i, g := range p.Grad.Data {
			m[i] = float32(b1)*m[i] + float32(1-b1)*g
			v[i] = float32(b2)*v[i] + float32(1-b2)*g*g
			mh := float64(m[i]) * c1
			vh := float64(v[i]) * c2
			p.Value.Data[i] -= float32(o.LR * mh / (math.Sqrt(vh) + o.Eps))
		}
	}
}
