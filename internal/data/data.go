// Package data provides the synthetic token streams that substitute for
// the paper's Wikipedia/WikiText-2 corpora (see DESIGN.md): seeded,
// Zipf-distributed token sequences with a simple next-token structure so
// convergence tests have something learnable, while throughput experiments
// remain content independent.
package data

import (
	"fmt"
	"math/rand"
)

// Batch is one mini-batch of token sequences with next-token targets.
type Batch struct {
	// Tokens is row-major [sequences][seqLen].
	Tokens [][]int
	// Targets[i][t] is the target for position t of sequence i.
	Targets [][]int
}

// Sequences returns the number of sequences in the batch.
func (b *Batch) Sequences() int { return len(b.Tokens) }

// MicroBatch returns sequences [lo, hi) as a sub-batch view.
func (b *Batch) MicroBatch(lo, hi int) *Batch {
	return &Batch{Tokens: b.Tokens[lo:hi], Targets: b.Targets[lo:hi]}
}

// FlatTokens returns the batch's token ids flattened to float32, the wire
// format of pipeline stage 0.
func (b *Batch) FlatTokens() []float32 {
	if len(b.Tokens) == 0 {
		return nil
	}
	t := make([]float32, 0, len(b.Tokens)*len(b.Tokens[0]))
	for _, seq := range b.Tokens {
		for _, id := range seq {
			t = append(t, float32(id))
		}
	}
	return t
}

// FlatTargets returns targets flattened row-major.
func (b *Batch) FlatTargets() []int {
	var out []int
	for _, seq := range b.Targets {
		out = append(out, seq...)
	}
	return out
}

// Stream generates batches deterministically from a seed.
type Stream struct {
	vocab  int
	seqLen int
	zipf   *rand.Zipf
	rng    *rand.Rand
}

// NewStream creates a token stream over the given vocabulary and sequence
// length. The distribution is Zipfian (s = 1.2), like natural text.
func NewStream(vocab, seqLen int, seed int64) *Stream {
	if vocab < 4 || seqLen < 2 {
		panic(fmt.Sprintf("data: degenerate stream vocab=%d seqLen=%d", vocab, seqLen))
	}
	rng := rand.New(rand.NewSource(seed))
	return &Stream{
		vocab:  vocab,
		seqLen: seqLen,
		zipf:   rand.NewZipf(rng, 1.2, 1, uint64(vocab-1)),
		rng:    rng,
	}
}

// Next produces a batch of n sequences. Targets follow a learnable rule:
// the target of position t is a deterministic function of the current
// token (next-token prediction over a synthetic grammar).
func (s *Stream) Next(n int) *Batch {
	b := &Batch{Tokens: make([][]int, n), Targets: make([][]int, n)}
	for i := 0; i < n; i++ {
		tok := make([]int, s.seqLen)
		tgt := make([]int, s.seqLen)
		prev := int(s.zipf.Uint64())
		for t := 0; t < s.seqLen; t++ {
			tok[t] = prev
			// Synthetic grammar: mostly a deterministic successor with
			// occasional Zipf jumps — learnable but nontrivial.
			if s.rng.Float64() < 0.8 {
				prev = (prev*3 + 1) % s.vocab
			} else {
				prev = int(s.zipf.Uint64())
			}
			tgt[t] = prev
		}
		b.Tokens[i], b.Targets[i] = tok, tgt
	}
	return b
}
