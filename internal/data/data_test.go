package data

import (
	"testing"
	"testing/quick"
)

func TestStreamDeterministic(t *testing.T) {
	a := NewStream(100, 8, 42).Next(4)
	b := NewStream(100, 8, 42).Next(4)
	for i := range a.Tokens {
		for j := range a.Tokens[i] {
			if a.Tokens[i][j] != b.Tokens[i][j] || a.Targets[i][j] != b.Targets[i][j] {
				t.Fatal("stream not deterministic")
			}
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	a := NewStream(100, 8, 1).Next(4)
	b := NewStream(100, 8, 2).Next(4)
	same := true
	for i := range a.Tokens {
		for j := range a.Tokens[i] {
			if a.Tokens[i][j] != b.Tokens[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestTokensInRange(t *testing.T) {
	f := func(seed int64) bool {
		vocab := 50
		b := NewStream(vocab, 6, seed).Next(8)
		for i := range b.Tokens {
			for j := range b.Tokens[i] {
				if b.Tokens[i][j] < 0 || b.Tokens[i][j] >= vocab {
					return false
				}
				if b.Targets[i][j] < 0 || b.Targets[i][j] >= vocab {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMicroBatchViews(t *testing.T) {
	b := NewStream(30, 4, 9).Next(8)
	mb := b.MicroBatch(2, 5)
	if mb.Sequences() != 3 {
		t.Fatalf("micro batch has %d sequences", mb.Sequences())
	}
	if &mb.Tokens[0][0] != &b.Tokens[2][0] {
		t.Fatal("micro batch must be a view, not a copy")
	}
}

func TestFlattening(t *testing.T) {
	b := NewStream(30, 4, 9).Next(2)
	ft := b.FlatTokens()
	if len(ft) != 8 {
		t.Fatalf("flat tokens length %d", len(ft))
	}
	if int(ft[5]) != b.Tokens[1][1] {
		t.Fatal("row-major flattening broken")
	}
	tg := b.FlatTargets()
	if len(tg) != 8 || tg[3] != b.Targets[0][3] {
		t.Fatal("target flattening broken")
	}
}

func TestDegenerateStreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStream(2, 8, 0)
}
