package trace

import (
	"fmt"
	"strings"

	"chimera/internal/schedule"
)

// svgPalette colors ops by replica (down pipelines blue-ish, up pipelines
// red-ish, matching the paper's figures); backwards render darker.
var svgPalette = []struct{ fwd, bwd string }{
	{"#6baed6", "#2171b5"}, // down 0
	{"#fc9272", "#cb181d"}, // up 0
	{"#74c476", "#238b45"}, // down 1
	{"#fdae6b", "#d94801"}, // up 1
	{"#9e9ac8", "#54278f"}, // further pipelines cycle
	{"#fdd0a2", "#8c2d04"},
}

// SVG renders the replayed schedule as an SVG Gantt chart: one row per
// worker, one rect per op, colored by replica and pass direction, labelled
// with the micro-batch id. Suitable for embedding in documentation.
func SVG(s *schedule.Schedule, cm schedule.CostModel) (string, error) {
	tl, err := s.Replay(cm)
	if err != nil {
		return "", err
	}
	const (
		rowH    = 28
		unitW   = 18
		leftPad = 46
		topPad  = 30
	)
	width := leftPad + int(tl.Makespan)*unitW + 10
	height := topPad + s.D*rowH + 14
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16">%s D=%d N=%d f=%d — makespan %d, bubble %.3f</text>`+"\n",
		leftPad, s.Scheme, s.D, s.N, s.F, tl.Makespan, tl.BubbleRatio())
	for w := 0; w < s.D; w++ {
		y := topPad + w*rowH
		fmt.Fprintf(&b, `<text x="4" y="%d">P%d</text>`+"\n", y+rowH/2+4, w)
		// Row background shows idle time.
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f0f0f0"/>`+"\n",
			leftPad, y, int(tl.Makespan)*unitW, rowH-4)
		for i, op := range s.Workers[w] {
			x := leftPad + int(tl.Start[w][i])*unitW
			ww := int(tl.End[w][i]-tl.Start[w][i]) * unitW
			pal := svgPalette[op.Replica%len(svgPalette)]
			fill := pal.fwd
			if op.Kind == schedule.Backward {
				fill = pal.bwd
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#fff"/>`+"\n",
				x, y, ww, rowH-4, fill)
			label := fmt.Sprintf("%d", op.Micro())
			textFill := "#000"
			if op.Kind == schedule.Backward {
				textFill = "#fff"
			}
			fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s">%s</text>`+"\n",
				x+ww/2-3*len(label), y+rowH/2+4, textFill, label)
		}
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}
