// Package trace renders pipeline schedules as timelines: ASCII diagrams in
// the style of the paper's Figures 2, 3, 7 and 8, and Chrome-trace JSON for
// interactive inspection (chrome://tracing, Perfetto).
package trace

import (
	"encoding/json"
	"fmt"
	"strings"

	"chimera/internal/schedule"
)

// ASCII renders the schedule replayed under cm as one text row per worker.
// Forward slots show the micro-batch id, backward slots show it in
// parentheses-free lowercase-styled form using a distinct rune prefix:
// forwards as digits, backwards as digits preceded by '·'; idle time is '.'.
// Up-pipeline (reverse-direction) replicas render with a '˄' marker row in
// the legend instead of colors.
func ASCII(s *schedule.Schedule, cm schedule.CostModel) (string, error) {
	tl, err := s.Replay(cm)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s D=%d N=%d f=%d (1 col = %d time unit, F=digit, B='-digit', up-pipeline ops in [])\n",
		s.Scheme, s.D, s.N, s.F, 1)
	for w := 0; w < s.D; w++ {
		row := make([]string, tl.Makespan)
		for i := range row {
			row[i] = " ."
		}
		for i, op := range s.Workers[w] {
			label := fmt.Sprintf("%x", op.Micro()%16)
			if op.Kind == schedule.Backward {
				label = "-" + label
			} else {
				label = " " + label
			}
			if len(s.Replicas) > 1 && !s.Replicas[op.Replica].Down {
				label = strings.ToUpper(strings.Replace(label, " ", "[", 1))
				if op.Kind == schedule.Backward {
					label = strings.Replace(label, "-", "]", 1)
				}
			}
			for tt := tl.Start[w][i]; tt < tl.End[w][i]; tt++ {
				row[tt] = label
			}
		}
		fmt.Fprintf(&b, "P%-2d |", w)
		b.WriteString(strings.Join(row, ""))
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "makespan=%d bubble=%.3f\n", tl.Makespan, tl.BubbleRatio())
	return b.String(), nil
}

// chromeEvent is one complete event in the Chrome trace format.
type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Args struct {
		Micro   []int  `json:"micro"`
		Stage   int    `json:"stage"`
		Replica int    `json:"replica"`
		Kind    string `json:"kind"`
	} `json:"args"`
}

// ChromeTrace renders the replayed schedule as Chrome-trace JSON; each
// worker is a thread, each op a complete event.
func ChromeTrace(s *schedule.Schedule, cm schedule.CostModel) ([]byte, error) {
	tl, err := s.Replay(cm)
	if err != nil {
		return nil, err
	}
	var events []chromeEvent
	for w := 0; w < s.D; w++ {
		for i, op := range s.Workers[w] {
			ev := chromeEvent{
				Name: op.String(),
				Ph:   "X",
				Ts:   tl.Start[w][i],
				Dur:  tl.End[w][i] - tl.Start[w][i],
				Pid:  0,
				Tid:  w,
			}
			ev.Args.Micro = op.Micros
			ev.Args.Stage = op.Stage
			ev.Args.Replica = op.Replica
			ev.Args.Kind = op.Kind.String()
			events = append(events, ev)
		}
	}
	return json.MarshalIndent(map[string]any{"traceEvents": events}, "", " ")
}
