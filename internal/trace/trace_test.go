package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"chimera/internal/schedule"
)

func TestASCIIRendersAllWorkers(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ASCII(s, schedule.UnitPractical)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"P0 ", "P1 ", "P2 ", "P3 "} {
		if !strings.Contains(out, p) {
			t.Fatalf("missing worker row %q in:\n%s", p, out)
		}
	}
	if !strings.Contains(out, "makespan=16") {
		t.Fatalf("expected makespan=16 in:\n%s", out)
	}
	// Up-pipeline ops must be visible (bracketed).
	if !strings.Contains(out, "[") {
		t.Fatalf("up-pipeline ops not marked:\n%s", out)
	}
}

func TestASCIIIdleMarks(t *testing.T) {
	s, err := schedule.GPipe(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ASCII(s, schedule.UnitEqual)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ".") {
		t.Fatal("gpipe timeline should show idle slots")
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 8, Concat: schedule.Direct})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ChromeTrace(s, schedule.UnitPractical)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Dur int64  `json:"dur"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != s.OpsTotal() {
		t.Fatalf("%d events for %d ops", len(doc.TraceEvents), s.OpsTotal())
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur <= 0 || ev.Tid < 0 || ev.Tid >= 4 {
			t.Fatalf("malformed event %+v", ev)
		}
	}
}

func TestSVGWellFormed(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := SVG(s, schedule.UnitPractical)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("not an svg document")
	}
	// One rect per op plus one background per worker.
	if got := strings.Count(out, "<rect"); got != s.OpsTotal()+s.D {
		t.Fatalf("rect count %d want %d", got, s.OpsTotal()+s.D)
	}
	// Both directions must appear in distinct colors.
	if !strings.Contains(out, "#6baed6") || !strings.Contains(out, "#cb181d") {
		t.Fatal("replica palette not applied")
	}
}
