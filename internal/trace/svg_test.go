package trace

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chimera/internal/schedule"
)

var updateGolden = flag.Bool("update", false, "rewrite the SVG golden files from current output")

// goldenSVG compares one rendered schedule against its committed golden
// file; -update regenerates the files after an intentional renderer change.
func goldenSVG(t *testing.T, name string, s *schedule.Schedule, cm schedule.CostModel) string {
	t.Helper()
	got, err := SVG(s, cm)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/trace -update` once): %v", err)
	}
	if got != string(want) {
		t.Fatalf("SVG output drifted from golden %s.\nIf the change is intentional, regenerate with -update.\ngot:\n%s", path, got)
	}
	return got
}

// TestSVGGoldenChimeraD4: the D=4, N=4 bidirectional schedule under both
// unit-cost models, byte-for-byte.
func TestSVGGoldenChimeraD4(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	goldenSVG(t, "chimera_d4n4_equal.svg", s, schedule.UnitEqual)
	goldenSVG(t, "chimera_d4n4_practical.svg", s, schedule.UnitPractical)
}

// TestSVGGoldenGPipeD4: a baseline (single-replica) schedule golden.
func TestSVGGoldenGPipeD4(t *testing.T) {
	s, err := schedule.GPipe(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	goldenSVG(t, "gpipe_d4n4_equal.svg", s, schedule.UnitEqual)
}

// TestSVGStructure: structural invariants that hold for any renderer
// refactor — one background row plus one rect per op, backwards darker,
// every worker labelled, header carries the makespan.
func TestSVGStructure(t *testing.T) {
	s, err := schedule.Chimera(schedule.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := SVG(s, schedule.UnitPractical)
	if err != nil {
		t.Fatal(err)
	}
	ops := 0
	for w := 0; w < s.D; w++ {
		ops += len(s.Workers[w])
	}
	if got, want := strings.Count(out, "<rect "), ops+s.D; got != want {
		t.Fatalf("%d rects for %d ops + %d row backgrounds", got, ops, s.D)
	}
	for w := 0; w < s.D; w++ {
		if !strings.Contains(out, fmt.Sprintf(">P%d</text>", w)) {
			t.Fatalf("missing worker label P%d", w)
		}
	}
	tl, err := s.Replay(schedule.UnitPractical)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, fmt.Sprintf("makespan %d", tl.Makespan)) {
		t.Fatal("header does not state the makespan")
	}
	// Backward ops use the darker palette entry of replica 0 (down).
	if !strings.Contains(out, `fill="#2171b5"`) || !strings.Contains(out, `fill="#6baed6"`) {
		t.Fatal("missing forward/backward palette colors for the down pipeline")
	}
	// Up-pipeline replica colors must appear too (bidirectional schedule).
	if !strings.Contains(out, `fill="#fc9272"`) || !strings.Contains(out, `fill="#cb181d"`) {
		t.Fatal("missing forward/backward palette colors for the up pipeline")
	}
	if !strings.HasPrefix(out, "<svg xmlns=") || !strings.HasSuffix(out, "</svg>\n") {
		t.Fatal("not a well-formed standalone SVG document")
	}
}
