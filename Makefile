# CI and humans run the same commands: the .github/workflows/ci.yml jobs
# are thin wrappers around these targets.

GO ?= go

.PHONY: all build test race lint bench clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; \
	fi

# bench writes BENCH_sweep.json: serial vs parallel sweep throughput,
# speedup, and cache hit rate (the CI-archived perf trajectory).
bench:
	$(GO) run ./cmd/chimera-bench -json -out BENCH_sweep.json

clean:
	rm -f BENCH_sweep.json
