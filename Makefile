# CI and humans run the same commands: the .github/workflows/ci.yml jobs
# are thin wrappers around these targets.

GO ?= go

.PHONY: all build test race lint bench bench-serve bench-fleet bench-router fuzz cover clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; \
	fi

# bench writes BENCH_sweep.json (serial vs parallel sweep throughput,
# speedup, cache hit rate — the CI-archived perf trajectory) and
# BENCH_fleet.json (its fleet section, standalone).
bench:
	$(GO) run ./cmd/chimera-bench -json -out BENCH_sweep.json -fleet-out BENCH_fleet.json

# bench-fleet runs only the multi-job cluster-allocator benchmark:
# equal-split vs planner-guided weighted fleet throughput on the benchmark
# mix, the trace replay, and the cross-pool determinism check.
bench-fleet:
	$(GO) run ./cmd/chimera-bench -fleet-only -fleet-out BENCH_fleet.json

# bench-serve starts chimera-serve, drives every endpoint with the
# closed-loop load generator, and writes BENCH_serve.json (cold/warm
# latency, throughput, cache hit rates, 429 shedding). The load generator
# gates itself: plan responses byte-identical to in-process Plan, warm p50
# ≥ 2× faster than cold, clean shedding under overload.
bench-serve:
	$(GO) build -o bin/chimera-serve ./cmd/chimera-serve
	$(GO) build -o bin/chimera-loadgen ./cmd/chimera-loadgen
	./bin/chimera-serve -addr 127.0.0.1:8642 -max-inflight 4 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	./bin/chimera-loadgen -addr http://127.0.0.1:8642 -out BENCH_serve.json

# bench-router runs the self-contained router scaling benchmark: R
# in-process single-slot replicas behind the consistent-hash router,
# aggregate closed-loop rps at 1 vs R replicas, plus zipfian-skew tail
# latency through the router. Gates (-min-router-scaling,
# -max-zipf-p99-ms) are only meaningful on multi-core machines — replicas
# sharing one core cannot scale.
ROUTER_REPLICAS ?= 3
bench-router:
	$(GO) run ./cmd/chimera-loadgen -router-bench $(ROUTER_REPLICAS) -seed 1 \
		-out BENCH_serve_router.json

# fuzz explores beyond the committed seed corpora (testdata/fuzz replays on
# every plain `go test`) for a bounded time per target, mirroring CI.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzGraphReplayEquivalence -fuzztime=$(FUZZTIME) -run '^$$' ./internal/schedule/
	$(GO) test -fuzz=FuzzDecodeSpeedFactors -fuzztime=$(FUZZTIME) -run '^$$' ./internal/sim/

# cover writes the per-function coverage summary CI archives.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tee coverage.txt

clean:
	rm -rf bin coverage.out coverage.txt
