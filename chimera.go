// Package chimera is the public facade of this reproduction of
// "Chimera: Efficiently Training Large-Scale Neural Networks with
// Bidirectional Pipelines" (Li & Hoefler, SC'21).
//
// It exposes the four things a user composes:
//
//   - schedules — Chimera's bidirectional pipelines (including the
//     generalized 2f-pipeline form and the three N>D scaling methods) and
//     the baselines the paper evaluates against (GPipe, DAPPLE/1F1B, GEMS,
//     PipeDream, PipeDream-2BW);
//   - the cluster simulator — throughput/memory evaluation of any schedule
//     on calibrated Piz-Daint-like or V100-cluster-like platforms;
//   - the planner — the §3.4 performance model that picks (W, D, B);
//   - the training runtime — goroutine workers executing a schedule for
//     real on a pure-Go transformer, gradient-equivalent to sequential
//     mini-batch SGD.
//
// See examples/quickstart for a guided tour and DESIGN.md for the
// system inventory.
package chimera

import (
	"io"

	"chimera/internal/data"
	"chimera/internal/engine"
	"chimera/internal/fleet"
	"chimera/internal/model"
	"chimera/internal/obs"
	"chimera/internal/optim"
	"chimera/internal/perfmodel"
	"chimera/internal/pipeline"
	"chimera/internal/schedule"
	"chimera/internal/serve"
	"chimera/internal/sim"
	"chimera/internal/trace"
)

// Re-exported schedule construction.
type (
	// Schedule is a per-worker pipeline program (see internal/schedule).
	Schedule = schedule.Schedule
	// ScheduleSpec is the unified schedule request for Build: scheme,
	// placement policy (scheduler), shape, and the policy's inputs.
	ScheduleSpec = schedule.Spec
	// ChimeraConfig parameterizes NewChimera.
	ChimeraConfig = schedule.ChimeraConfig
	// ConcatMode selects the N > D scaling method (§3.5).
	ConcatMode = schedule.ConcatMode
	// CostModel supplies unit op costs for schedule analysis.
	CostModel = schedule.CostModel
	// Scheduler is a placement policy re-shaping schedules for
	// heterogeneous clusters (see Schedulers for the registered names).
	Scheduler = schedule.Scheduler
)

// Concatenation modes for Chimera beyond N = D micro-batches.
const (
	Direct          = schedule.Direct
	ForwardDoubling = schedule.ForwardDoubling
	BackwardHalving = schedule.BackwardHalving
)

// Build constructs the schedule a ScheduleSpec describes: the named scheme
// re-placed by the named scheduler ("" or "fixed" keeps the scheme's own
// placement, bit-identical to the deprecated constructors below). This is
// the preferred construction entry point.
func Build(spec ScheduleSpec) (*Schedule, error) { return schedule.Build(spec) }

// NewChimera builds a bidirectional pipeline schedule (§3.1–§3.6).
//
// Deprecated: use Build with ScheduleSpec{Scheme: "chimera", D: …, N: …,
// F: …, Concat: …}; this wrapper remains for compatibility and produces
// bit-identical schedules.
func NewChimera(cfg ChimeraConfig) (*Schedule, error) {
	return Build(ScheduleSpec{Scheme: "chimera", D: cfg.D, N: cfg.N, F: cfg.F, Concat: cfg.Concat})
}

// NewSchedule builds any supported scheme by name: "chimera", "gpipe",
// "dapple", "gems", "pipedream", "pipedream-2bw", "1f1b".
//
// Deprecated: use Build with ScheduleSpec{Scheme: scheme, D: d, N: n}; this
// wrapper remains for compatibility and produces bit-identical schedules.
func NewSchedule(scheme string, d, n int) (*Schedule, error) {
	return Build(ScheduleSpec{Scheme: scheme, D: d, N: n})
}

// Schemes lists the supported scheme names.
func Schemes() []string { return schedule.Schemes() }

// Schedulers lists the registered placement-policy names ("fixed" first) —
// the ScheduleSpec.Scheduler vocabulary, companion to Schemes.
func Schedulers() []string { return schedule.Schedulers() }

// Analyze computes bubble ratios and memory profiles (Table 2 units).
func Analyze(s *Schedule) (*schedule.Analysis, error) { return schedule.Analyze(s) }

// Simulation.
type (
	// SimConfig configures one simulated training run.
	SimConfig = sim.Config
	// SimResult is the simulated iteration outcome.
	SimResult = sim.Result
	// Device models an accelerator; Network an interconnect.
	Device  = sim.Device
	Network = sim.Network
	// ModelConfig describes a transformer for the simulator and planner.
	ModelConfig = model.Config
)

// Simulate runs one training iteration under the cluster simulator.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// SimulateAuto enables activation recomputation automatically when the
// plain configuration exceeds device memory (the paper's R annotation).
func SimulateAuto(cfg SimConfig) (*SimResult, bool, error) { return sim.AutoRun(cfg) }

// Platform presets.
func PizDaintNode() Device     { return sim.PizDaintNode() }
func AriesNetwork() Network    { return sim.AriesNetwork() }
func V100Node() Device         { return sim.V100Node() }
func NVLinkIBNetwork() Network { return sim.NVLinkIBNetwork() }

// Model zoo (paper Table 4).
func BERT48() ModelConfig      { return model.BERT48() }
func GPT2() ModelConfig        { return model.GPT2() }
func GPT2Small32() ModelConfig { return model.GPT2Small32() }

// Planning (§3.4).
type (
	// PlanRequest describes a configuration-selection problem.
	PlanRequest = perfmodel.PlanRequest
	// Prediction is the performance model's estimate for one configuration.
	Prediction = perfmodel.Prediction
)

// Plan ranks feasible (W, D, B) Chimera configurations by Eq. 1. The
// candidates are evaluated concurrently on the shared engine.
func Plan(req PlanRequest) ([]*Prediction, error) { return perfmodel.Plan(req) }

// PlanParallel is Plan on a caller-supplied engine: pool size and caches
// under the caller's control (e.g. NewEngine(1) for a serial reference).
func PlanParallel(e *Engine, req PlanRequest) ([]*Prediction, error) {
	return perfmodel.PlanOn(e, req)
}

// Predict evaluates Eq. 1 for one configuration.
func Predict(cfg SimConfig) (*Prediction, error) { return perfmodel.Predict(cfg) }

// Concurrent sweep engine (see internal/engine): a GOMAXPROCS worker pool
// with memoized schedule construction, critical-path probes, and simulator
// evaluations. Sweeps return outcomes in input order — identical to the
// serial path — regardless of pool size.
type (
	// Engine owns the worker pool and memoization tables.
	Engine = engine.Engine
	// SweepSpec describes one simulator evaluation as a comparable value.
	SweepSpec = engine.Spec
	// SweepOutcome is the (result, recompute, error) of one evaluation.
	SweepOutcome = engine.Outcome
	// SweepScheduleKey identifies a memoized schedule construction.
	SweepScheduleKey = engine.ScheduleKey
	// EngineStats snapshots cache hit/miss counters.
	EngineStats = engine.Stats
)

// DefaultEngine returns the process-wide shared engine used by Plan and the
// experiment sweeps.
func DefaultEngine() *Engine { return engine.Default() }

// NewEngine builds a private engine with the given worker-pool size
// (workers <= 0 selects GOMAXPROCS).
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		return engine.New()
	}
	return engine.New(engine.Workers(workers))
}

// Sweep evaluates every spec concurrently on the shared engine and returns
// outcomes in input order.
func Sweep(specs []SweepSpec) []SweepOutcome { return engine.Default().Sweep(specs) }

// HTTP service layer (cmd/chimera-serve, internal/serve): the planner,
// simulator, schedule analysis and timeline rendering behind an HTTP/JSON
// API with admission control, bounded caches, and graceful shutdown.
type (
	// Server routes the /v1 API onto a shared evaluation engine.
	Server = serve.Server
	// ServeConfig configures NewServer: engine pool size, LRU cache
	// capacity, admission limit, drain timeout.
	ServeConfig = serve.Config
)

// NewServer builds the HTTP planning service. Serve it with
// (*Server).ListenAndServe (graceful shutdown on context cancel) or embed
// (*Server).Handler in an existing mux.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// Observability (internal/obs): the zero-dependency metrics core behind
// GET /metrics, /debug/requests and the engine/serve/fleet instrumentation.
type (
	// MetricsRegistry names, interns and renders metric series
	// (Prometheus text via WritePrometheus, JSON via Snapshot).
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time JSON digest of a registry, as
	// embedded in /v1/stats responses.
	MetricsSnapshot = obs.Snapshot
)

// NewMetricsRegistry builds an empty metrics registry. Attach it to a
// private engine with engine.Observe, to a server via ServeConfig.Registry,
// or to a fleet allocator with (*FleetAllocator).Observe; instrumentation
// stays disabled — and free — on components without one.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Fleet planning (internal/fleet): multi-job cluster allocation on top of
// the planner, plus a deterministic discrete-event fleet simulator.
type (
	// FleetRequest is one fleet-allocation problem: a cluster, the jobs
	// competing for its nodes, and an allocation policy.
	FleetRequest = fleet.Request
	// FleetCluster describes the shared node pool (size, optional
	// per-node speed factors, platform).
	FleetCluster = fleet.Cluster
	// FleetJob is one job asking for nodes.
	FleetJob = fleet.Job
	// FleetAllocation is the per-job node shares and chosen plans.
	FleetAllocation = fleet.Allocation
	// FleetPolicy selects the allocator.
	FleetPolicy = fleet.Policy
	// FleetScenario is a cluster + job vocabulary + arrival trace for the
	// fleet simulator.
	FleetScenario = fleet.Scenario
	// FleetArrival is one trace event.
	FleetArrival = fleet.Arrival
	// FleetSimResult reports makespan, per-job waits, and utilization.
	FleetSimResult = fleet.SimResult
	// FleetAllocator runs repeated allocations with a shared plan memo.
	FleetAllocator = fleet.Allocator
	// FleetEvent is one elastic-trace event: a job arrival or node churn
	// (fail/drain/join).
	FleetEvent = fleet.Event
	// FleetEventKind names an elastic event type.
	FleetEventKind = fleet.EventKind
	// FleetElasticScenario is a cluster + job vocabulary + churn-bearing
	// event trace for the elastic fleet simulator.
	FleetElasticScenario = fleet.ElasticScenario
	// FleetElasticResult reports the elastic replay: makespan, churn and
	// migration counters, the pinned event log, and the final allocation.
	FleetElasticResult = fleet.ElasticResult
	// FleetReplanMode selects incremental or full re-planning on events.
	FleetReplanMode = fleet.ReplanMode
)

// Fleet allocation policies.
const (
	FleetEqualSplit    = fleet.EqualSplit
	FleetPlannerGuided = fleet.PlannerGuided
)

// Elastic-trace event kinds and re-plan modes.
const (
	FleetArrivalEvent      = fleet.EvArrival
	FleetNodeFail          = fleet.EvNodeFail
	FleetNodeDrain         = fleet.EvNodeDrain
	FleetNodeJoin          = fleet.EvNodeJoin
	FleetReplanIncremental = fleet.ReplanIncremental
	FleetReplanFull        = fleet.ReplanFull
)

// PlanFleet allocates cluster nodes across competing jobs and picks each
// job's (W, D, B) with the §3.4 planner, maximizing Σ priority·throughput.
// Runs on the shared engine; deterministic at any pool size.
func PlanFleet(req FleetRequest) (*FleetAllocation, error) { return fleet.Allocate(req) }

// PlanFleetOn is PlanFleet on a caller-supplied engine.
func PlanFleetOn(e *Engine, req FleetRequest) (*FleetAllocation, error) {
	return fleet.AllocateOn(e, req)
}

// SimulateFleet replays a job arrival/departure trace through the
// allocator as a deterministic discrete-event simulation.
func SimulateFleet(sc FleetScenario) (*FleetSimResult, error) { return fleet.Simulate(sc) }

// SimulateFleetElastic replays an elastic trace — arrivals plus node
// failures, drains, and joins — re-planning incrementally on every event
// with migration-cost-aware preemption and deadline-aware priority aging.
// Bit-deterministic at any engine pool size.
func SimulateFleetElastic(sc FleetElasticScenario) (*FleetElasticResult, error) {
	return fleet.SimulateElastic(sc)
}

// NewFleetAllocator builds an allocator that reuses one plan memo across
// many allocations (nil engine selects the shared default).
func NewFleetAllocator(e *Engine) *FleetAllocator { return fleet.NewAllocator(e) }

// Real training runtime.
type (
	// Trainer executes a schedule with goroutine workers on a pure-Go
	// transformer.
	Trainer = pipeline.Trainer
	// TrainerConfig configures New.
	TrainerConfig = pipeline.Config
	// ModelSpec describes the trained transformer.
	ModelSpec = pipeline.ModelSpec
	// Reference is the sequential mini-batch SGD baseline.
	Reference = pipeline.Reference
	// Batch is a mini-batch of token sequences.
	Batch = data.Batch
	// Optimizer applies a first-order update rule.
	Optimizer = optim.Optimizer
)

// NewTrainer builds the distributed training runtime for a schedule.
func NewTrainer(cfg TrainerConfig) (*Trainer, error) { return pipeline.New(cfg) }

// NewReference builds the sequential baseline with identical weights.
func NewReference(spec ModelSpec, d, microBatch int, newOpt func() Optimizer) (*Reference, error) {
	return pipeline.NewReference(spec, d, microBatch, newOpt)
}

// NewStream creates a deterministic synthetic token stream.
func NewStream(vocab, seqLen int, seed int64) *data.Stream {
	return data.NewStream(vocab, seqLen, seed)
}

// SGD, Momentum and Adam optimizers.
func NewSGD(lr float64) Optimizer          { return &optim.SGD{LR: lr} }
func NewMomentum(lr, mu float64) Optimizer { return &optim.Momentum{LR: lr, Mu: mu} }
func NewAdam(lr float64) Optimizer         { return optim.NewAdam(lr) }

// RenderASCII draws a schedule timeline (Figs. 2/3/7/8 style).
func RenderASCII(s *Schedule, cm CostModel) (string, error) { return trace.ASCII(s, cm) }

// WriteChromeTrace writes the replayed schedule as Chrome-trace JSON.
func WriteChromeTrace(w io.Writer, s *Schedule, cm CostModel) error {
	raw, err := trace.ChromeTrace(s, cm)
	if err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

// Unit cost models for analysis.
var (
	// UnitEqual: forward == backward == 1 (construction figures).
	UnitEqual = schedule.UnitEqual
	// UnitPractical: backward = 2× forward (practical workloads).
	UnitPractical = schedule.UnitPractical
)

// Asynchronous training (PipeDream weight stashing) and lossy gradient
// synchronization — the extensions discussed in §2 and the conclusion.
type (
	// AsyncTrainer executes PipeDream-style asynchronous training with
	// weight stashing (stale weights; not equivalent to mini-batch SGD).
	AsyncTrainer = pipeline.AsyncTrainer
	// AsyncConfig configures NewAsyncTrainer.
	AsyncConfig = pipeline.AsyncConfig
	// CompressionKind selects the lossy gradient codec for TrainerConfig.
	CompressionKind = pipeline.CompressionKind
)

// Gradient compression codecs for TrainerConfig.Compression.
const (
	CompressNone = pipeline.CompressNone
	CompressInt8 = pipeline.CompressInt8
	CompressTopK = pipeline.CompressTopK
)

// NewAsyncTrainer builds the weight-stashing PipeDream runtime.
func NewAsyncTrainer(cfg AsyncConfig) (*AsyncTrainer, error) {
	return pipeline.NewAsyncTrainer(cfg)
}
