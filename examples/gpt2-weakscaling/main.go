// gpt2-weakscaling reproduces the shape of the paper's headline experiment
// (Fig. 15): weak-scaling a 1.39B-parameter GPT-2 from 512 to 2,048
// simulated Piz Daint nodes, comparing Chimera against DAPPLE and GPipe at
// their best configurations.
package main

import (
	"fmt"
	"log"

	"chimera"
)

func main() {
	m := chimera.GPT2()
	dev, net := chimera.PizDaintNode(), chimera.AriesNetwork()
	fmt.Printf("weak scaling %s (%.2fB parameters), B̂ = P\n", m.Name, float64(m.TotalParams())/1e9)

	for _, p := range []int{512, 1024, 2048} {
		bhat := p
		fmt.Printf("\n%d nodes, mini-batch %d:\n", p, bhat)
		for _, scheme := range []string{"gpipe", "dapple", "chimera"} {
			best := 0.0
			var bestDesc string
			for _, d := range []int{8, 16, 32} {
				w := p / d
				n := bhat / w // B=1
				if n < 1 {
					continue
				}
				var sched *chimera.Schedule
				var err error
				if scheme == "chimera" {
					sched, err = chimera.NewChimera(chimera.ChimeraConfig{D: d, N: n, Concat: chimera.Direct})
				} else {
					sched, err = chimera.NewSchedule(scheme, d, n)
				}
				if err != nil {
					continue
				}
				res, recompute, err := chimera.SimulateAuto(chimera.SimConfig{
					Model: m, Schedule: sched, MicroBatch: 1, W: w, Device: dev, Network: net,
				})
				if err != nil || res.OOM {
					continue
				}
				if res.Throughput > best {
					best = res.Throughput
					r := ""
					if recompute {
						r = ", R"
					}
					bestDesc = fmt.Sprintf("W=%d D=%d%s: %.1f seq/s (bubble %.3f)", w, d, r, res.Throughput, res.BubbleRatio)
				}
			}
			if bestDesc == "" {
				log.Fatalf("%s: no feasible configuration at P=%d", scheme, p)
			}
			fmt.Printf("  %-8s %s\n", scheme, bestDesc)
		}
	}
	fmt.Println("\nexpected shape (paper Fig. 15): chimera on top at every scale, no recompute at D=32")
}
