// bert-training runs real pipeline-parallel training of a miniature BERT on
// goroutine workers under Chimera's bidirectional schedule — with a
// data-parallel dimension (§3.3) — and verifies the paper's convergence
// claim: gradients and weights match sequential mini-batch SGD exactly
// (up to float reassociation).
package main

import (
	"fmt"
	"log"
	"math"

	"chimera"
)

func main() {
	spec := chimera.ModelSpec{Vocab: 67, Dim: 32, Heads: 4, SeqLen: 16, Layers: 8, Seed: 3}
	const (
		d, n, w = 4, 4, 2 // 4 stages × 2 pipeline copies = 8 workers
		b       = 2       // sequences per micro-batch
		iters   = 15
	)
	sched, err := chimera.NewChimera(chimera.ChimeraConfig{D: d, N: n})
	if err != nil {
		log.Fatal(err)
	}
	newOpt := func() chimera.Optimizer { return chimera.NewMomentum(0.05, 0.9) }
	trainer, err := chimera.NewTrainer(chimera.TrainerConfig{
		Schedule: sched, W: w, Spec: spec, MicroBatch: b,
		NewOptimizer: newOpt, EagerSync: true, // §3.2 eager gradient sync
	})
	if err != nil {
		log.Fatal(err)
	}
	ref, err := chimera.NewReference(spec, d, b, newOpt)
	if err != nil {
		log.Fatal(err)
	}

	stream := chimera.NewStream(spec.Vocab, spec.SeqLen, 42)
	fmt.Printf("training an 8-layer mini-BERT under Chimera (D=%d, N=%d, W=%d → %d workers)\n", d, n, w, d*w)
	for i := 0; i < iters; i++ {
		batch := stream.Next(b * n * w)
		loss, err := trainer.TrainIteration(batch)
		if err != nil {
			log.Fatal(err)
		}
		refLoss, err := ref.TrainIteration(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iter %2d  pipeline loss %.4f  sequential loss %.4f  |Δ| %.1e\n",
			i, loss, refLoss, math.Abs(loss-refLoss))
	}

	var worst float64
	for st := 0; st < d; st++ {
		pw, rw := trainer.StageWeights(st, 0), ref.StageWeights(st)
		for i := range pw {
			if diff := math.Abs(float64(pw[i]) - float64(rw[i])); diff > worst {
				worst = diff
			}
		}
	}
	fmt.Printf("\nmax weight deviation from sequential SGD: %.2e — synchronous, no stale weights\n", worst)
}
