// config-planner demonstrates §3.4: Chimera's greedy micro-batch policy
// plus the α-β performance model shrink the (W, D, B) tuning space to a
// ranked shortlist, and the model's prediction stays within 10% of the
// simulated "practical" throughput.
package main

import (
	"fmt"
	"log"
	"math"

	"chimera"
)

func main() {
	m := chimera.BERT48()
	req := chimera.PlanRequest{
		Model: m, P: 32, MiniBatch: 512,
		Device: chimera.PizDaintNode(), Network: chimera.AriesNetwork(),
		MaxB: 64,
	}
	preds, err := chimera.Plan(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %d workers, B̂=%d — Eq. 1 ranking:\n", m.Name, req.P, req.MiniBatch)
	for i, pr := range preds {
		// Cross-check each prediction against the simulator.
		sched, err := chimera.NewChimera(chimera.ChimeraConfig{D: pr.D, N: pr.N, Concat: chimera.Direct})
		if err != nil {
			log.Fatal(err)
		}
		res, err := chimera.Simulate(chimera.SimConfig{
			Model: m, Schedule: sched, MicroBatch: pr.B, W: pr.W,
			Recompute: pr.Recompute, Device: req.Device, Network: req.Network,
		})
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * math.Abs(pr.IterTime-res.IterTime) / res.IterTime
		mark := " "
		if i == 0 {
			mark = "*"
		}
		fmt.Printf("%s W=%-3d D=%-3d B=%-3d N=%-3d  model %.1f seq/s | simulated %.1f seq/s | error %.1f%%\n",
			mark, pr.W, pr.D, pr.B, pr.N, pr.Throughput, res.Throughput, errPct)
	}
	fmt.Println("\ngreedy max-B means only (W, D) is searched — the reduced tuning space of §3.4")
}
