// Quickstart: build Chimera's bidirectional pipeline schedule, look at it,
// measure its paper-facing properties, and simulate a training iteration on
// a Piz-Daint-like cluster.
package main

import (
	"fmt"
	"log"

	"chimera"
)

func main() {
	// 1. A Chimera schedule: D=4 stages, N=4 micro-batches per worker.
	sched, err := chimera.NewChimera(chimera.ChimeraConfig{D: 4, N: 4})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Render the timeline (backward = 2× forward, as in Fig. 3).
	art, err := chimera.RenderASCII(sched, chimera.UnitPractical)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(art)

	// 3. Paper-facing analysis: bubble ratio and memory intervals (Table 2).
	analysis, err := chimera.Analyze(sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis)

	// 4. Compare with DAPPLE, the state-of-the-art synchronous baseline.
	dapple, err := chimera.NewSchedule("dapple", 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	da, err := chimera.Analyze(dapple)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(da)
	fmt.Printf("bubble reduction vs DAPPLE: %.0f%%\n\n",
		100*(1-analysis.BubbleRatioEqual/da.BubbleRatioEqual))

	// 5. Simulate one BERT-48 training iteration on 32 P100 nodes.
	bigSched, err := chimera.NewChimera(chimera.ChimeraConfig{D: 8, N: 8, Concat: chimera.Direct})
	if err != nil {
		log.Fatal(err)
	}
	res, err := chimera.Simulate(chimera.SimConfig{
		Model:      chimera.BERT48(),
		Schedule:   bigSched,
		MicroBatch: 8,
		W:          4, // 4 data-parallel pipelines × 8 stages = 32 workers
		Device:     chimera.PizDaintNode(),
		Network:    chimera.AriesNetwork(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BERT-48 on 32 simulated P100 nodes (W=4, D=8, B=8):\n")
	fmt.Printf("  iteration %.3f s, %.1f sequences/s, bubble ratio %.3f\n",
		res.IterTime, res.Throughput, res.BubbleRatio)
}
