// schedule-gallery renders every pipeline scheme the paper discusses, plus
// Chimera's N>D variants and the generalized four-pipeline overlay — a
// visual tour of Figures 2, 3, 7 and 8.
package main

import (
	"fmt"
	"log"

	"chimera"
)

func show(title string, s *chimera.Schedule, cm chimera.CostModel) {
	fmt.Printf("--- %s ---\n", title)
	art, err := chimera.RenderASCII(s, cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(art)
	fmt.Println()
}

func main() {
	fmt.Println("All schemes at D=4, N=4 (backward = 2× forward, as in Fig. 2):")
	for _, name := range chimera.Schemes() {
		s, err := chimera.NewSchedule(name, 4, 4)
		if err != nil {
			log.Fatal(err)
		}
		show(name, s, chimera.UnitPractical)
	}

	fmt.Println("Chimera N>D scaling methods at D=4, N=8 (Fig. 7):")
	for _, mode := range []chimera.ConcatMode{chimera.Direct, chimera.ForwardDoubling, chimera.BackwardHalving} {
		s, err := chimera.NewChimera(chimera.ChimeraConfig{D: 4, N: 8, Concat: mode})
		if err != nil {
			log.Fatal(err)
		}
		show(fmt.Sprintf("chimera %v", mode), s, chimera.UnitPractical)
	}

	fmt.Println("Four 8-stage pipelines, f=2 (Fig. 8, equal-cost model):")
	s, err := chimera.NewChimera(chimera.ChimeraConfig{D: 8, N: 8, F: 2})
	if err != nil {
		log.Fatal(err)
	}
	show("chimera f=2", s, chimera.UnitEqual)
}
