package chimera_test

import (
	"testing"

	"chimera"
)

// TestFleetFacade: the public PlanFleet/SimulateFleet surface solves a
// small fleet problem end to end and honors the policy constants.
func TestFleetFacade(t *testing.T) {
	cluster := chimera.FleetCluster{
		Nodes:  16,
		Device: chimera.PizDaintNode(), Network: chimera.AriesNetwork(),
	}
	jobs := []chimera.FleetJob{
		{Name: "big", Model: chimera.BERT48(), MiniBatch: 256, Priority: 4},
		{Name: "small", Model: chimera.BERT48(), MiniBatch: 32},
	}
	guided, err := chimera.PlanFleet(chimera.FleetRequest{Cluster: cluster, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if guided.Policy != chimera.FleetPlannerGuided {
		t.Fatalf("default policy = %q", guided.Policy)
	}
	equal, err := chimera.PlanFleetOn(chimera.NewEngine(1), chimera.FleetRequest{
		Cluster: cluster, Jobs: jobs, Policy: chimera.FleetEqualSplit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(guided.WeightedThroughput >= equal.WeightedThroughput) {
		t.Fatalf("planner-guided %.2f below equal-split %.2f", guided.WeightedThroughput, equal.WeightedThroughput)
	}
	for _, al := range []*chimera.FleetAllocation{guided, equal} {
		if len(al.Jobs) != 2 || al.Jobs[0].Job != "big" {
			t.Fatalf("jobs out of input order: %+v", al.Jobs)
		}
	}

	res, err := chimera.SimulateFleet(chimera.FleetScenario{
		Cluster: cluster, Jobs: jobs,
		Trace: []chimera.FleetArrival{
			{At: 0, Job: "big", Work: 5000},
			{At: 10, Job: "small", Work: 500},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || len(res.Jobs) != 2 {
		t.Fatalf("implausible fleet simulation: %+v", res)
	}
}
