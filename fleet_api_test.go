package chimera_test

import (
	"testing"

	"chimera"
)

// TestFleetFacade: the public PlanFleet/SimulateFleet surface solves a
// small fleet problem end to end and honors the policy constants.
func TestFleetFacade(t *testing.T) {
	cluster := chimera.FleetCluster{
		Nodes:  16,
		Device: chimera.PizDaintNode(), Network: chimera.AriesNetwork(),
	}
	jobs := []chimera.FleetJob{
		{Name: "big", Model: chimera.BERT48(), MiniBatch: 256, Priority: 4},
		{Name: "small", Model: chimera.BERT48(), MiniBatch: 32},
	}
	guided, err := chimera.PlanFleet(chimera.FleetRequest{Cluster: cluster, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if guided.Policy != chimera.FleetPlannerGuided {
		t.Fatalf("default policy = %q", guided.Policy)
	}
	equal, err := chimera.PlanFleetOn(chimera.NewEngine(1), chimera.FleetRequest{
		Cluster: cluster, Jobs: jobs, Policy: chimera.FleetEqualSplit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(guided.WeightedThroughput >= equal.WeightedThroughput) {
		t.Fatalf("planner-guided %.2f below equal-split %.2f", guided.WeightedThroughput, equal.WeightedThroughput)
	}
	for _, al := range []*chimera.FleetAllocation{guided, equal} {
		if len(al.Jobs) != 2 || al.Jobs[0].Job != "big" {
			t.Fatalf("jobs out of input order: %+v", al.Jobs)
		}
	}

	res, err := chimera.SimulateFleet(chimera.FleetScenario{
		Cluster: cluster, Jobs: jobs,
		Trace: []chimera.FleetArrival{
			{At: 0, Job: "big", Work: 5000},
			{At: 10, Job: "small", Work: 500},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || len(res.Jobs) != 2 {
		t.Fatalf("implausible fleet simulation: %+v", res)
	}
}

// TestFleetElasticFacade: the elastic simulator is reachable through the
// facade — churn events replay, the pool tracks fail/join, and the event
// kinds and re-plan constants line up with the fleet package's.
func TestFleetElasticFacade(t *testing.T) {
	cluster := chimera.FleetCluster{
		Nodes:  8,
		Device: chimera.PizDaintNode(), Network: chimera.AriesNetwork(),
	}
	res, err := chimera.SimulateFleetElastic(chimera.FleetElasticScenario{
		Cluster: cluster,
		Jobs: []chimera.FleetJob{
			{Name: "a", Model: chimera.BERT48(), MiniBatch: 64, Priority: 2},
			{Name: "b", Model: chimera.BERT48(), MiniBatch: 32},
		},
		Replan:           chimera.FleetReplanIncremental,
		MigrationPenalty: 2,
		Events: []chimera.FleetEvent{
			{At: 0, Kind: chimera.FleetArrivalEvent, Job: "a", Work: 20000},
			{At: 5, Kind: chimera.FleetArrivalEvent, Job: "b", Work: 5000},
			{At: 10, Kind: chimera.FleetNodeFail, Node: 0},
			{At: 20, Kind: chimera.FleetNodeJoin},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replan != chimera.FleetReplanIncremental {
		t.Fatalf("replan mode = %q", res.Replan)
	}
	if res.Fails != 1 || res.Joins != 1 || res.InitialNodes != 8 || res.FinalNodes != 8 {
		t.Fatalf("churn accounting off: %+v", res)
	}
	for _, run := range res.Jobs {
		if run.DoneAt < 0 {
			t.Fatalf("run %s never completed under churn", run.Job)
		}
	}
}
